"""Gradient checks and semantics for every Tensor operator."""

import numpy as np
import pytest

from repro.nn.tensor import Tensor, concat, ensure_tensor, is_grad_enabled, no_grad, stack, where
from tests.conftest import check_gradients


class TestArithmetic:
    def test_add_grad(self, rng):
        check_gradients(lambda a, b: a + b, rng.normal(size=(3, 4)), rng.normal(size=(3, 4)))

    def test_add_broadcast_grad(self, rng):
        check_gradients(lambda a, b: a + b, rng.normal(size=(3, 4)), rng.normal(size=(4,)))

    def test_sub_grad(self, rng):
        check_gradients(lambda a, b: a - b, rng.normal(size=(2, 3)), rng.normal(size=(2, 3)))

    def test_mul_grad(self, rng):
        check_gradients(lambda a, b: a * b, rng.normal(size=(3, 4)), rng.normal(size=(3, 4)))

    def test_mul_broadcast_scalar_tensor(self, rng):
        check_gradients(lambda a, b: a * b, rng.normal(size=(3, 4)), rng.normal(size=(1,)))

    def test_div_grad(self, rng):
        check_gradients(
            lambda a, b: a / b,
            rng.normal(size=(3, 3)),
            rng.uniform(1.0, 2.0, size=(3, 3)),
        )

    def test_neg_grad(self, rng):
        check_gradients(lambda a: -a, rng.normal(size=(5,)))

    def test_pow_grad(self, rng):
        check_gradients(lambda a: a**3, rng.uniform(0.5, 2.0, size=(4,)))

    def test_scalar_radd_rmul(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        out = (3.0 + t) * 2.0
        np.testing.assert_allclose(out.data, [8.0, 10.0])

    def test_rsub_rdiv(self):
        t = Tensor([2.0, 4.0])
        np.testing.assert_allclose((10.0 - t).data, [8.0, 6.0])
        np.testing.assert_allclose((8.0 / t).data, [4.0, 2.0])


class TestMatmul:
    def test_matmul_2d_grad(self, rng):
        check_gradients(lambda a, b: a @ b, rng.normal(size=(3, 4)), rng.normal(size=(4, 5)))

    def test_matmul_vec_matrix_grad(self, rng):
        check_gradients(lambda a, b: a @ b, rng.normal(size=(4,)), rng.normal(size=(4, 5)))

    def test_matmul_matrix_vec_grad(self, rng):
        check_gradients(lambda a, b: a @ b, rng.normal(size=(3, 4)), rng.normal(size=(4,)))

    def test_matmul_batched_grad(self, rng):
        check_gradients(
            lambda a, b: a @ b, rng.normal(size=(2, 3, 4)), rng.normal(size=(2, 4, 5))
        )

    def test_matmul_values(self, rng):
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(4, 5))
        np.testing.assert_allclose((Tensor(a) @ Tensor(b)).data, a @ b)


class TestElementwise:
    @pytest.mark.parametrize(
        "name",
        ["exp", "tanh", "sigmoid", "cos", "sin", "relu", "abs"],
    )
    def test_unary_grads(self, rng, name):
        x = rng.normal(size=(3, 4)) + 0.05  # nudge away from relu/abs kinks
        check_gradients(lambda a: getattr(a, name)(), x)

    def test_log_grad(self, rng):
        check_gradients(lambda a: a.log(), rng.uniform(0.5, 2.0, size=(3, 3)))

    def test_sqrt(self, rng):
        x = rng.uniform(1.0, 4.0, size=(4,))
        np.testing.assert_allclose(Tensor(x).sqrt().data, np.sqrt(x))

    def test_leaky_relu_grad(self, rng):
        x = rng.normal(size=(3, 4)) + 0.05
        check_gradients(lambda a: a.leaky_relu(0.1), x)

    def test_leaky_relu_negative_branch(self):
        out = Tensor([-2.0, 3.0]).leaky_relu(0.5)
        np.testing.assert_allclose(out.data, [-1.0, 3.0])

    def test_clamp_grad(self, rng):
        x = rng.normal(size=(6,)) * 2
        check_gradients(lambda a: a.clamp(-1.0, 1.0), x)

    def test_clamp_values(self):
        out = Tensor([-5.0, 0.0, 5.0]).clamp(-1.0, 1.0)
        np.testing.assert_allclose(out.data, [-1.0, 0.0, 1.0])


class TestReductions:
    def test_sum_all_grad(self, rng):
        check_gradients(lambda a: a.sum(), rng.normal(size=(3, 4)))

    def test_sum_axis_grad(self, rng):
        check_gradients(lambda a: a.sum(axis=1), rng.normal(size=(3, 4)))

    def test_sum_keepdims_grad(self, rng):
        check_gradients(lambda a: a.sum(axis=0, keepdims=True), rng.normal(size=(3, 4)))

    def test_mean_grad(self, rng):
        check_gradients(lambda a: a.mean(axis=1), rng.normal(size=(3, 4)))

    def test_mean_matches_numpy(self, rng):
        x = rng.normal(size=(3, 4))
        np.testing.assert_allclose(Tensor(x).mean(axis=0).data, x.mean(axis=0))

    def test_max_grad_no_ties(self):
        x = np.array([[1.0, 5.0, 2.0], [7.0, 3.0, 4.0]])
        check_gradients(lambda a: a.max(axis=1), x)

    def test_max_values(self, rng):
        x = rng.normal(size=(3, 4))
        np.testing.assert_allclose(Tensor(x).max(axis=1).data, x.max(axis=1))


class TestShapes:
    def test_reshape_grad(self, rng):
        check_gradients(lambda a: a.reshape(2, 6), rng.normal(size=(3, 4)))

    def test_reshape_tuple_arg(self, rng):
        x = Tensor(rng.normal(size=(4, 3)))
        assert x.reshape((2, 6)).shape == (2, 6)

    def test_transpose_grad(self, rng):
        check_gradients(lambda a: a.transpose(), rng.normal(size=(3, 4)))

    def test_transpose_axes_grad(self, rng):
        check_gradients(lambda a: a.transpose(1, 2, 0), rng.normal(size=(2, 3, 4)))

    def test_T_property(self, rng):
        x = rng.normal(size=(3, 4))
        np.testing.assert_allclose(Tensor(x).T.data, x.T)

    def test_getitem_grad(self, rng):
        check_gradients(lambda a: a[1:3], rng.normal(size=(5, 2)))

    def test_getitem_fancy_grad(self, rng):
        idx = np.array([0, 2, 2])
        check_gradients(lambda a: a[idx], rng.normal(size=(4, 3)))


class TestIndexing:
    def test_index_select_grad(self, rng):
        idx = np.array([0, 1, 1, 3])
        check_gradients(lambda a: a.index_select(idx), rng.normal(size=(4, 3)))

    def test_index_select_repeated_rows_accumulate(self):
        w = Tensor(np.eye(3), requires_grad=True)
        out = w.index_select(np.array([1, 1]))
        out.sum().backward()
        assert w.grad[1].sum() == pytest.approx(6.0)  # two rows x 3 entries
        assert w.grad[0].sum() == pytest.approx(0.0)

    def test_scatter_add_grad(self, rng):
        idx = np.array([0, 2, 2, 1])
        check_gradients(
            lambda base, src: base.scatter_add(idx, src),
            rng.normal(size=(3, 2)),
            rng.normal(size=(4, 2)),
        )

    def test_scatter_add_values(self):
        base = Tensor(np.zeros((3, 2)))
        src = Tensor(np.ones((4, 2)))
        out = base.scatter_add(np.array([0, 0, 2, 2]), src)
        np.testing.assert_allclose(out.data, [[2, 2], [0, 0], [2, 2]])


class TestCombinators:
    def test_concat_grad(self, rng):
        check_gradients(
            lambda a, b: concat([a, b], axis=1),
            rng.normal(size=(2, 3)),
            rng.normal(size=(2, 2)),
        )

    def test_concat_axis0(self, rng):
        a, b = rng.normal(size=(2, 3)), rng.normal(size=(1, 3))
        np.testing.assert_allclose(
            concat([Tensor(a), Tensor(b)]).data, np.concatenate([a, b])
        )

    def test_stack_grad(self, rng):
        check_gradients(
            lambda a, b: stack([a, b], axis=1),
            rng.normal(size=(2, 3)),
            rng.normal(size=(2, 3)),
        )

    def test_where_grad(self, rng):
        cond = np.array([[True, False], [False, True]])
        check_gradients(
            lambda a, b: where(cond, a, b),
            rng.normal(size=(2, 2)),
            rng.normal(size=(2, 2)),
        )


class TestGraphMechanics:
    def test_backward_accumulates_on_reuse(self):
        x = Tensor([2.0], requires_grad=True)
        y = x * x + x  # dy/dx = 2x + 1 = 5
        y.backward()
        assert x.grad[0] == pytest.approx(5.0)

    def test_backward_requires_scalar(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2).backward()

    def test_backward_without_grad_flag_raises(self):
        x = Tensor([1.0])
        with pytest.raises(RuntimeError):
            x.backward()

    def test_no_grad_blocks_graph(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 3
        assert not y.requires_grad

    def test_no_grad_is_thread_local(self):
        # grad mode must be per-thread: a serving thread inside no_grad()
        # must not disable autograd for a training thread, and concurrent
        # enter/exit must not corrupt the restored state (a process-global
        # flag fails both — save/restore interleaves across threads)
        import threading

        inside = threading.Event()
        release = threading.Event()
        seen = {}

        def hold_no_grad():
            with no_grad():
                seen["worker_inside"] = is_grad_enabled()
                inside.set()
                release.wait(timeout=10)
            seen["worker_after"] = is_grad_enabled()

        worker = threading.Thread(target=hold_no_grad)
        worker.start()
        assert inside.wait(timeout=10)
        try:
            # worker is inside no_grad(); this thread is unaffected
            assert is_grad_enabled()
            x = Tensor([1.0], requires_grad=True)
            assert x.requires_grad
            (x * 2).backward()
            assert x.grad[0] == pytest.approx(2.0)
        finally:
            release.set()
            worker.join(timeout=10)
        assert seen["worker_inside"] is False
        assert seen["worker_after"] is True

        # interleaved enter/exit across many threads leaves every thread
        # (and this one) with grad enabled afterwards
        barrier = threading.Barrier(4)
        results = []

        def churn():
            for _ in range(50):
                with no_grad():
                    barrier.wait(timeout=10)
                    assert not is_grad_enabled()
            results.append(is_grad_enabled())

        threads = [threading.Thread(target=churn) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert results == [True] * 4
        assert is_grad_enabled()

    def test_detach_cuts_graph(self):
        x = Tensor([1.0], requires_grad=True)
        y = (x * 2).detach() * 5
        assert not y.requires_grad

    def test_diamond_graph_grad(self):
        # z = (x*2) + (x*3); dz/dx = 5
        x = Tensor([1.0], requires_grad=True)
        a = x * 2
        b = x * 3
        (a + b).backward()
        assert x.grad[0] == pytest.approx(5.0)

    def test_deep_chain_is_iterative_not_recursive(self):
        # 3000-op chain would blow Python's default recursion limit if
        # the topological sort were recursive
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 1.0
        y.backward()
        assert x.grad[0] == pytest.approx(1.0)

    def test_ensure_tensor_passthrough(self):
        t = Tensor([1.0])
        assert ensure_tensor(t) is t
        assert isinstance(ensure_tensor([1.0, 2.0]), Tensor)

    def test_comparison_returns_numpy(self):
        t = Tensor([1.0, 3.0])
        mask = t > 2.0
        assert isinstance(mask, np.ndarray)
        np.testing.assert_array_equal(mask, [False, True])
