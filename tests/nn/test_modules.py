"""Module system, layers, GRU, conv, init tests."""

import numpy as np
import pytest
from scipy.signal import correlate, correlate2d

from repro import nn
from repro.nn import functional as F, init
from repro.nn.module import Module, ModuleDict, ModuleList, Parameter
from repro.nn.tensor import Tensor
from tests.conftest import check_gradients


class TestModuleSystem:
    def test_parameter_registration(self):
        class M(Module):
            def __init__(self):
                super().__init__()
                self.w = Parameter(np.ones(3))
                self.inner = nn.Linear(2, 2)

        m = M()
        names = dict(m.named_parameters())
        assert "w" in names and "inner.weight" in names and "inner.bias" in names

    def test_parameters_deduplicated(self):
        shared = nn.Linear(2, 2)

        class M(Module):
            def __init__(self):
                super().__init__()
                self.a = shared
                self.b = shared

        assert len(M().parameters()) == 2  # weight + bias once

    def test_train_eval_propagates(self):
        class M(Module):
            def __init__(self):
                super().__init__()
                self.drop = nn.Dropout(0.5)

        m = M()
        m.eval()
        assert not m.drop.training
        m.train()
        assert m.drop.training

    def test_zero_grad(self):
        lin = nn.Linear(2, 2)
        out = lin(Tensor(np.ones((1, 2))))
        out.sum().backward()
        assert lin.weight.grad is not None
        lin.zero_grad()
        assert lin.weight.grad is None

    def test_state_dict_roundtrip(self):
        a, b = nn.Linear(3, 2), nn.Linear(3, 2)
        b.load_state_dict(a.state_dict())
        np.testing.assert_allclose(a.weight.data, b.weight.data)

    def test_state_dict_is_a_copy(self):
        lin = nn.Linear(2, 2)
        state = lin.state_dict()
        lin.weight.data += 1.0
        assert not np.allclose(state["weight"], lin.weight.data)

    def test_load_state_dict_key_mismatch_raises(self):
        lin = nn.Linear(2, 2)
        with pytest.raises(KeyError):
            lin.load_state_dict({"nope": np.zeros((2, 2))})

    def test_load_state_dict_shape_mismatch_raises(self):
        lin = nn.Linear(2, 2)
        bad = {name: np.zeros(7) for name in lin.state_dict()}
        with pytest.raises(ValueError):
            lin.load_state_dict(bad)

    def test_module_list(self):
        ml = ModuleList([nn.Linear(2, 2), nn.Linear(2, 2)])
        assert len(ml) == 2
        assert len(ml.parameters()) == 4
        assert ml[0] is list(iter(ml))[0]

    def test_module_dict(self):
        md = ModuleDict({"a": nn.Linear(2, 2)})
        md["b"] = nn.Linear(2, 3)
        assert "a" in md and "b" in md
        assert len(md.parameters()) == 4

    def test_num_parameters(self):
        lin = nn.Linear(3, 4)
        assert lin.num_parameters() == 3 * 4 + 4


class TestLayers:
    def test_linear_shapes_and_grad(self, rng):
        lin = nn.Linear(4, 3)
        x = Tensor(rng.normal(size=(5, 4)), requires_grad=True)
        out = lin(x)
        assert out.shape == (5, 3)
        out.sum().backward()
        assert x.grad.shape == (5, 4)
        assert lin.weight.grad.shape == (3, 4)

    def test_linear_no_bias(self):
        lin = nn.Linear(4, 3, bias=False)
        assert lin.bias is None
        assert len(lin.parameters()) == 1

    def test_embedding_sparse_grad(self):
        emb = nn.Embedding(10, 4)
        out = emb(np.array([2, 2, 7]))
        out.sum().backward()
        grad_rows = np.abs(emb.weight.grad).sum(axis=1)
        assert grad_rows[2] > 0 and grad_rows[7] > 0
        assert grad_rows[[0, 1, 3, 4, 5, 6, 8, 9]].sum() == 0

    def test_dropout_eval_identity(self, rng):
        d = nn.Dropout(0.5)
        d.eval()
        x = Tensor(rng.normal(size=(3, 3)))
        np.testing.assert_allclose(d(x).data, x.data)

    def test_dropout_invalid_p(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.5)

    def test_sequential(self, rng):
        seq = nn.Sequential(nn.Linear(4, 8), nn.ReLU(), nn.Linear(8, 2))
        out = seq(Tensor(rng.normal(size=(3, 4))))
        assert out.shape == (3, 2)

    def test_layernorm_statistics(self, rng):
        ln = nn.LayerNorm(16)
        out = ln(Tensor(rng.normal(size=(4, 16)) * 3 + 2))
        assert np.allclose(out.data.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(out.data.std(axis=-1), 1.0, atol=1e-2)

    def test_batchnorm_train_vs_eval(self, rng):
        bn = nn.BatchNorm1d(4)
        x = Tensor(rng.normal(size=(32, 4)) * 2 + 1)
        out_train = bn(x)
        assert np.allclose(out_train.data.mean(axis=0), 0.0, atol=1e-6)
        bn.eval()
        out_eval = bn(x)
        # running stats only saw one batch with momentum 0.1
        assert not np.allclose(out_eval.data, out_train.data)

    def test_batchnorm_3d_input(self, rng):
        bn = nn.BatchNorm1d(3)
        out = bn(Tensor(rng.normal(size=(5, 3, 7))))
        assert out.shape == (5, 3, 7)


class TestGRUCell:
    def test_shapes(self, rng):
        cell = nn.GRUCell(4, 6)
        h = cell(Tensor(rng.normal(size=(5, 4))), Tensor(rng.normal(size=(5, 6))))
        assert h.shape == (5, 6)

    def test_grad_flows_to_both_inputs(self, rng):
        cell = nn.GRUCell(3, 3)
        x = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        h = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        cell(x, h).sum().backward()
        assert x.grad is not None and h.grad is not None

    def test_output_bounded_by_tanh_dynamics(self, rng):
        cell = nn.GRUCell(3, 3)
        h = Tensor(rng.uniform(-1, 1, size=(4, 3)))
        out = cell(Tensor(rng.normal(size=(4, 3))), h)
        assert np.all(np.abs(out.data) <= 1.0 + 1e-9)

    def test_gru_can_learn_to_copy(self, rng):
        # minimal sanity: GRU trained to track a tanh-range target
        cell = nn.GRUCell(2, 2)
        opt = nn.Adam(cell.parameters(), lr=0.05)
        x = rng.normal(size=(64, 2))
        target = np.tanh(x[:, 0])  # inside the GRU's output range
        for _ in range(200):
            opt.zero_grad()
            out = cell(Tensor(x), Tensor(np.zeros((64, 2))))
            loss = ((out[:, 0] - Tensor(target)) ** 2).mean()
            loss.backward()
            opt.step()
        assert loss.item() < 0.05


class TestConv:
    def test_conv1d_matches_scipy(self, rng):
        conv = nn.Conv1d(2, 1, 3, padding=1)
        x = rng.normal(size=(1, 2, 9))
        expected = (
            sum(correlate(x[0, c], conv.weight.data[0, c], mode="same") for c in range(2))
            + conv.bias.data[0]
        )
        np.testing.assert_allclose(conv(Tensor(x)).data[0, 0], expected, atol=1e-10)

    def test_conv1d_grad(self, rng):
        conv = nn.Conv1d(2, 2, 3, padding=1)
        x = Tensor(rng.normal(size=(2, 2, 5)), requires_grad=True)
        conv(x).sum().backward()
        assert x.grad.shape == x.shape
        assert conv.weight.grad is not None

    def test_conv1d_no_padding_shrinks(self, rng):
        conv = nn.Conv1d(1, 1, 3, padding=0)
        out = conv(Tensor(rng.normal(size=(1, 1, 8))))
        assert out.shape == (1, 1, 6)

    def test_conv1d_channel_mismatch_raises(self, rng):
        conv = nn.Conv1d(2, 1, 3)
        with pytest.raises(ValueError):
            conv(Tensor(rng.normal(size=(1, 3, 8))))

    def test_conv2d_matches_scipy(self, rng):
        conv = nn.Conv2d(1, 1, 3, padding=1, bias=False)
        x = rng.normal(size=(1, 1, 6, 7))
        expected = correlate2d(x[0, 0], conv.weight.data[0, 0], mode="same")
        np.testing.assert_allclose(conv(Tensor(x)).data[0, 0], expected, atol=1e-10)

    def test_conv2d_multichannel_shapes(self, rng):
        conv = nn.Conv2d(3, 5, 3, padding=1)
        out = conv(Tensor(rng.normal(size=(2, 3, 4, 4))))
        assert out.shape == (2, 5, 4, 4)

    def test_conv2d_grad(self, rng):
        conv = nn.Conv2d(1, 2, 3, padding=1)
        x = Tensor(rng.normal(size=(1, 1, 4, 4)), requires_grad=True)
        conv(x).sum().backward()
        assert x.grad.shape == x.shape


class TestInit:
    def test_xavier_uniform_bound(self):
        w = init.xavier_uniform((100, 50))
        bound = np.sqrt(6.0 / 150)
        assert np.abs(w).max() <= bound

    def test_xavier_normal_std(self):
        w = init.xavier_normal((2000, 2000))
        assert w.std() == pytest.approx(np.sqrt(2.0 / 4000), rel=0.05)

    def test_seeded_initializers_reproducible(self):
        r1 = np.random.default_rng(7)
        r2 = np.random.default_rng(7)
        np.testing.assert_allclose(
            init.xavier_uniform((4, 4), rng=r1), init.xavier_uniform((4, 4), rng=r2)
        )

    def test_zeros_ones(self):
        assert init.zeros((2, 2)).sum() == 0
        assert init.ones((2, 2)).sum() == 4


class TestActivationsModules:
    def test_rrelu_module_eval_deterministic(self):
        act = nn.RReLU(0.2, 0.2)
        act.eval()
        out = act(Tensor([-5.0]))
        np.testing.assert_allclose(out.data, [-1.0])

    def test_rrelu_invalid_bounds(self):
        with pytest.raises(ValueError):
            nn.RReLU(0.5, 0.2)

    def test_softmax_module(self, rng):
        out = nn.Softmax()(Tensor(rng.normal(size=(2, 5))))
        np.testing.assert_allclose(out.data.sum(axis=1), np.ones(2))

    def test_sigmoid_tanh_modules(self):
        assert nn.Sigmoid()(Tensor([0.0])).data[0] == pytest.approx(0.5)
        assert nn.Tanh()(Tensor([0.0])).data[0] == pytest.approx(0.0)


class TestSeedableRandomness:
    def test_fresh_generator_follows_global_seed(self):
        from repro.nn.rand import fresh_generator

        np.random.seed(123)
        a = fresh_generator().random(3)
        np.random.seed(123)
        b = fresh_generator().random(3)
        np.testing.assert_allclose(a, b)

    def test_dropout_layers_reproducible_after_seeding(self):
        np.random.seed(7)
        d1 = nn.Dropout(0.5)
        np.random.seed(7)
        d2 = nn.Dropout(0.5)
        x = Tensor(np.ones((4, 4)))
        np.testing.assert_allclose(d1(x).data, d2(x).data)
