"""The dtype-configurable engine: default dtype plumbing and checkpoint
dtype round-trips."""

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F
from repro.nn import init
from repro.nn.serialization import CheckpointError, load_checkpoint, save_checkpoint
from repro.nn.tensor import Tensor, default_dtype, get_default_dtype, set_default_dtype


@pytest.fixture(autouse=True)
def _restore_default_dtype():
    previous = get_default_dtype()
    yield
    set_default_dtype(previous)


class TestDefaultDtype:
    def test_float64_is_the_default(self):
        assert get_default_dtype() == np.float64
        assert Tensor([1.0, 2.0]).data.dtype == np.float64

    def test_set_returns_previous(self):
        assert set_default_dtype(np.float32) == np.float64
        assert get_default_dtype() == np.float32

    def test_rejects_non_float_dtypes(self):
        with pytest.raises(ValueError):
            set_default_dtype(np.int64)
        with pytest.raises(ValueError):
            set_default_dtype(np.float16)

    def test_context_manager_restores(self):
        with default_dtype(np.float32):
            assert Tensor([1.0]).data.dtype == np.float32
        assert Tensor([1.0]).data.dtype == np.float64

    def test_threads_through_init_and_modules(self):
        with default_dtype(np.float32):
            assert init.xavier_uniform((4, 4)).dtype == np.float32
            assert init.zeros((3,)).dtype == np.float32
            lin = nn.Linear(3, 2)
            assert lin.weight.data.dtype == np.float32
            emb = nn.Embedding(5, 4)
            assert emb.weight.data.dtype == np.float32
            assert F.one_hot(np.array([1]), 3).dtype == np.float32

    def test_float32_forward_backward_stays_float32(self):
        with default_dtype(np.float32):
            lin = nn.Linear(4, 2)
            out = lin(Tensor(np.ones((3, 4), dtype=np.float32)))
            assert out.data.dtype == np.float32
            (out * out).sum().backward()
            assert lin.weight.grad.dtype == np.float32

    def test_optimizer_preserves_param_dtype(self):
        with default_dtype(np.float32):
            lin = nn.Linear(4, 2)
            opt = nn.Adam(lin.parameters(), lr=0.01)
            loss = (lin(Tensor(np.ones((3, 4), dtype=np.float32))) ** 2).sum()
            loss.backward()
            opt.step()
            assert lin.weight.data.dtype == np.float32


class TestCheckpointDtype:
    def test_float32_round_trips_exactly(self, tmp_path):
        with default_dtype(np.float32):
            lin = nn.Linear(5, 3)
        path = str(tmp_path / "f32.npz")
        save_checkpoint(lin, path)
        # load into a float64-initialised clone: params adopt float32
        clone = nn.Linear(5, 3)
        assert clone.weight.data.dtype == np.float64
        meta = load_checkpoint(clone, path)
        assert meta["dtype"] == "float32"
        assert clone.weight.data.dtype == np.float32
        np.testing.assert_array_equal(clone.weight.data, lin.weight.data)  # bitwise

    def test_restore_dtype_false_raises_on_mismatch(self, tmp_path):
        with default_dtype(np.float32):
            lin = nn.Linear(5, 3)
        path = str(tmp_path / "f32.npz")
        save_checkpoint(lin, path)
        with pytest.raises(CheckpointError, match="dtype mismatches"):
            load_checkpoint(nn.Linear(5, 3), path, restore_dtype=False)

    def test_dtype_and_shape_mismatches_reported_together(self, tmp_path):
        with default_dtype(np.float32):
            lin = nn.Linear(5, 3)
        path = str(tmp_path / "f32.npz")
        save_checkpoint(lin, path)
        with pytest.raises(CheckpointError) as err:
            load_checkpoint(nn.Linear(4, 3), path, restore_dtype=False)
        message = str(err.value)
        assert "shape mismatches" in message
        assert "dtype mismatches" in message

    def test_matching_dtype_loads_with_restore_dtype_false(self, tmp_path):
        lin = nn.Linear(5, 3)
        path = str(tmp_path / "f64.npz")
        save_checkpoint(lin, path)
        clone = nn.Linear(5, 3)
        load_checkpoint(clone, path, restore_dtype=False)
        np.testing.assert_array_equal(clone.weight.data, lin.weight.data)
