"""Gradcheck property tests for the fused segment reductions.

Every op is validated against the dense one-hot matmul reference (the
``"dense"`` impl) in both value and gradient, over layouts that exercise
the edge cases real graphs produce: empty segments, a single edge, and
non-contiguous destination ids.
"""

import numpy as np
import pytest

from repro.nn.segment import (
    SegmentLayout,
    get_segment_impl,
    segment_impl,
    segment_max,
    segment_mean,
    segment_softmax,
    segment_sum,
    segment_sum_data,
    set_segment_impl,
)
from repro.nn.tensor import Tensor
from tests.conftest import check_gradients

# (segments, num_segments) cases: empty segments interleaved,
# single-edge graphs, and non-contiguous destination ids.
CASES = [
    pytest.param(np.array([0, 0, 1, 1, 1, 3]), 5, id="empty-segments"),
    pytest.param(np.array([2]), 4, id="single-edge"),
    pytest.param(np.array([7, 2, 7, 0, 2, 7, 11]), 13, id="non-contiguous"),
    pytest.param(np.array([], dtype=np.int64), 3, id="no-edges"),
    pytest.param(np.array([1, 1, 1, 1]), 2, id="one-hot-segment"),
]

OPS = [segment_sum, segment_mean, segment_max]


def dense_reference(op, values, segments, num_segments):
    with segment_impl("dense"):
        return op(Tensor(values), segments, num_segments).data


class TestImplSwitch:
    def test_default_is_fused(self):
        assert get_segment_impl() == "fused"

    def test_unknown_impl_rejected(self):
        with pytest.raises(ValueError, match="unknown segment impl"):
            set_segment_impl("turbo")

    def test_context_restores(self):
        with segment_impl("reference"):
            assert get_segment_impl() == "reference"
            with segment_impl("dense"):
                assert get_segment_impl() == "dense"
            assert get_segment_impl() == "reference"
        assert get_segment_impl() == "fused"


class TestLayout:
    def test_out_of_range_ids_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            SegmentLayout(np.array([0, 5]), 5)
        with pytest.raises(ValueError, match="out of range"):
            SegmentLayout(np.array([-1]), 5)

    def test_csr_invariants(self):
        layout = SegmentLayout(np.array([3, 0, 3, 1]), 6)
        assert layout.num_entries == 4
        np.testing.assert_array_equal(layout.counts, [1, 1, 0, 2, 0, 0])
        np.testing.assert_array_equal(layout.indptr, [0, 1, 2, 2, 4, 4, 4])
        np.testing.assert_array_equal(layout.nonempty, [1, 1, 0, 1, 0, 0])
        np.testing.assert_array_equal(layout.starts, [0, 1, 2])
        # stable sort keeps the two segment-3 entries in input order
        np.testing.assert_array_equal(layout.segments[layout.order], [0, 1, 3, 3])

    def test_num_segments_required_without_layout(self):
        with pytest.raises(ValueError, match="num_segments"):
            segment_sum(Tensor(np.ones(2)), np.array([0, 1]))


class TestForwardAgainstDense:
    @pytest.mark.parametrize("segments,num_segments", CASES)
    @pytest.mark.parametrize("op", OPS, ids=lambda f: f.__name__)
    @pytest.mark.parametrize("impl", ["fused", "reference"])
    def test_matches_dense(self, op, segments, num_segments, impl, rng):
        values = rng.normal(size=(len(segments), 3))
        expected = dense_reference(op, values, segments, num_segments)
        with segment_impl(impl):
            out = op(Tensor(values), segments, num_segments).data
        np.testing.assert_allclose(out, expected, atol=1e-12)

    @pytest.mark.parametrize("segments,num_segments", CASES)
    @pytest.mark.parametrize("impl", ["fused", "reference"])
    def test_softmax_matches_dense(self, segments, num_segments, impl, rng):
        scores = rng.normal(size=len(segments)) * 3
        with segment_impl("dense"):
            expected = segment_softmax(Tensor(scores), segments, num_segments).data
        with segment_impl(impl):
            out = segment_softmax(Tensor(scores), segments, num_segments).data
        np.testing.assert_allclose(out, expected, atol=1e-12)

    def test_softmax_groups_sum_to_one(self, rng):
        segments = np.array([0, 2, 0, 2, 2, 4])
        out = segment_softmax(Tensor(rng.normal(size=6)), segments, 5)
        sums = segment_sum_data(out.data, segments, 5)
        np.testing.assert_allclose(sums[[0, 2, 4]], [1.0, 1.0, 1.0])
        assert sums[1] == sums[3] == 0.0

    def test_layout_and_raw_ids_agree(self, rng):
        segments = np.array([4, 1, 4, 0])
        layout = SegmentLayout(segments, 6)
        values = rng.normal(size=(4, 2))
        np.testing.assert_array_equal(
            segment_sum(Tensor(values), layout).data,
            segment_sum(Tensor(values), segments, 6).data,
        )

    def test_segment_sum_data_raw_numpy(self, rng):
        segments = np.array([1, 1, 3])
        values = rng.normal(size=(3, 2))
        out = segment_sum_data(values, segments, 4)
        assert isinstance(out, np.ndarray)
        np.testing.assert_allclose(out[1], values[:2].sum(axis=0))
        np.testing.assert_allclose(out[3], values[2])
        assert out[0].sum() == out[2].sum() == 0.0


class TestGradients:
    @pytest.mark.parametrize("segments,num_segments", CASES)
    @pytest.mark.parametrize(
        "op", [segment_sum, segment_mean], ids=lambda f: f.__name__
    )
    @pytest.mark.parametrize("impl", ["fused", "reference", "dense"])
    def test_linear_ops(self, op, segments, num_segments, impl, rng):
        values = rng.normal(size=(len(segments), 2))
        with segment_impl(impl):
            check_gradients(lambda v: op(v, segments, num_segments), values)

    @pytest.mark.parametrize("segments,num_segments", CASES)
    @pytest.mark.parametrize("impl", ["fused", "reference"])
    def test_max(self, segments, num_segments, impl, rng):
        # well-separated values keep the argmax stable under the
        # finite-difference probes
        values = rng.permutation(len(segments) * 2).reshape(len(segments), 2) * 1.0
        with segment_impl(impl):
            check_gradients(lambda v: segment_max(v, segments, num_segments), values)

    def test_max_tied_gradient_splits_equally(self):
        values = Tensor(np.array([2.0, 2.0, 1.0]), requires_grad=True)
        out = segment_max(values, np.array([0, 0, 0]), 1)
        out.backward()
        np.testing.assert_allclose(values.grad, [0.5, 0.5, 0.0])

    @pytest.mark.parametrize("segments,num_segments", CASES)
    @pytest.mark.parametrize("impl", ["fused", "reference", "dense"])
    def test_softmax(self, segments, num_segments, impl, rng):
        scores = rng.normal(size=len(segments))
        with segment_impl(impl):
            check_gradients(
                lambda s: segment_softmax(s, segments, num_segments), scores
            )

    def test_softmax_rejects_matrix_scores(self, rng):
        with pytest.raises(ValueError, match="1-D"):
            segment_softmax(Tensor(rng.normal(size=(3, 2))), np.array([0, 1, 1]), 2)

    def test_gradient_flows_through_layout_path(self, rng):
        layout = SegmentLayout(np.array([0, 2, 2]), 4)
        values = Tensor(rng.normal(size=(3, 2)), requires_grad=True)
        segment_sum(values, layout).sum().backward()
        np.testing.assert_allclose(values.grad, np.ones((3, 2)))
