"""Property-based gradient checks: random shapes/values, core op set."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn import functional as F
from repro.nn.tensor import Tensor, concat
from tests.conftest import check_gradients

small_floats = st.floats(-3, 3, allow_nan=False, width=64)


def matrices(min_side=1, max_side=4):
    return arrays(
        np.float64,
        st.tuples(st.integers(min_side, max_side), st.integers(min_side, max_side)),
        elements=small_floats,
    )


class TestRandomizedGradients:
    @given(matrices())
    @settings(max_examples=15, deadline=None)
    def test_sigmoid_chain(self, x):
        check_gradients(lambda a: a.sigmoid().tanh(), x)

    @given(matrices())
    @settings(max_examples=15, deadline=None)
    def test_softmax_any_shape(self, x):
        check_gradients(lambda a: F.softmax(a), x)

    @given(matrices(min_side=2))
    @settings(max_examples=15, deadline=None)
    def test_matmul_with_transpose(self, x):
        check_gradients(lambda a: a @ a.T, x)

    @given(matrices())
    @settings(max_examples=15, deadline=None)
    def test_sum_then_exp(self, x):
        check_gradients(lambda a: a.sum(axis=0).exp(), x)

    @given(matrices(min_side=2), st.integers(0, 1))
    @settings(max_examples=15, deadline=None)
    def test_mean_axes(self, x, axis):
        check_gradients(lambda a: a.mean(axis=axis), x)

    @given(matrices())
    @settings(max_examples=10, deadline=None)
    def test_self_concat(self, x):
        check_gradients(lambda a: concat([a, a * 2.0], axis=0), x)

    @given(
        arrays(np.float64, st.tuples(st.integers(2, 5), st.integers(1, 4)),
               elements=small_floats),
        st.data(),
    )
    @settings(max_examples=15, deadline=None)
    def test_index_select_random_indices(self, x, data):
        n = x.shape[0]
        indices = np.array(
            data.draw(st.lists(st.integers(0, n - 1), min_size=1, max_size=6))
        )
        check_gradients(lambda a: a.index_select(indices), x)

    @given(
        arrays(np.float64, st.tuples(st.integers(2, 4), st.integers(1, 3)),
               elements=small_floats),
        st.data(),
    )
    @settings(max_examples=15, deadline=None)
    def test_scatter_add_random_targets(self, src, data):
        base = np.zeros((3, src.shape[1]))
        indices = np.array(
            data.draw(st.lists(st.integers(0, 2), min_size=src.shape[0],
                               max_size=src.shape[0]))
        )
        check_gradients(lambda b, s: b.scatter_add(indices, s), base, src)

    @given(matrices())
    @settings(max_examples=10, deadline=None)
    def test_division_stable_region(self, x):
        # keep denominators away from zero
        check_gradients(lambda a: a / (a * a + 1.0), x)
