"""Optimiser and loss-function tests."""

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F
from repro.nn.module import Parameter
from repro.nn.optim import clip_grad_norm_
from repro.nn.tensor import Tensor
from tests.conftest import check_gradients


def _make_regression(rng, n=64):
    X = rng.normal(size=(n, 3))
    y = X @ np.array([1.0, -2.0, 0.5]) + 0.3
    return X, y


class TestSGD:
    def test_plain_sgd_descends(self, rng):
        X, y = _make_regression(rng)
        lin = nn.Linear(3, 1)
        opt = nn.SGD(lin.parameters(), lr=0.1)
        first = None
        for _ in range(100):
            opt.zero_grad()
            loss = ((lin(Tensor(X)).reshape(len(X)) - Tensor(y)) ** 2).mean()
            if first is None:
                first = loss.item()
            loss.backward()
            opt.step()
        assert loss.item() < first * 0.05

    def test_momentum_accelerates(self, rng):
        X, y = _make_regression(rng)

        def run(momentum):
            nn.init.set_rng(np.random.default_rng(0))
            lin = nn.Linear(3, 1)
            opt = nn.SGD(lin.parameters(), lr=0.02, momentum=momentum)
            for _ in range(40):
                opt.zero_grad()
                loss = ((lin(Tensor(X)).reshape(len(X)) - Tensor(y)) ** 2).mean()
                loss.backward()
                opt.step()
            return loss.item()

        assert run(0.9) < run(0.0)

    def test_weight_decay_shrinks_weights(self):
        p = Parameter(np.ones(4) * 10)
        opt = nn.SGD([p], lr=0.1, weight_decay=0.5)
        p.grad = np.zeros(4)
        opt.step()
        assert np.all(p.data < 10)

    def test_empty_parameters_raises(self):
        with pytest.raises(ValueError):
            nn.SGD([], lr=0.1)

    def test_bad_lr_raises(self):
        with pytest.raises(ValueError):
            nn.SGD([Parameter(np.zeros(1))], lr=0)


class TestAdam:
    def test_converges_linear_regression(self, rng):
        X, y = _make_regression(rng)
        lin = nn.Linear(3, 1)
        opt = nn.Adam(lin.parameters(), lr=0.05)
        for _ in range(300):
            opt.zero_grad()
            loss = ((lin(Tensor(X)).reshape(len(X)) - Tensor(y)) ** 2).mean()
            loss.backward()
            opt.step()
        assert loss.item() < 1e-4
        np.testing.assert_allclose(lin.weight.data[0], [1.0, -2.0, 0.5], atol=1e-2)

    def test_skips_params_without_grad(self):
        p1, p2 = Parameter(np.zeros(2)), Parameter(np.zeros(2))
        opt = nn.Adam([p1, p2], lr=0.1)
        p1.grad = np.ones(2)
        opt.step()
        assert np.all(p1.data != 0)
        assert np.all(p2.data == 0)

    def test_first_step_size_near_lr(self):
        # Adam's bias correction makes the first step ~lr * sign(grad)
        p = Parameter(np.zeros(1))
        opt = nn.Adam([p], lr=0.01)
        p.grad = np.array([5.0])
        opt.step()
        assert p.data[0] == pytest.approx(-0.01, rel=1e-3)


class TestClipGradNorm:
    def test_clips_when_exceeding(self):
        p = Parameter(np.zeros(4))
        p.grad = np.ones(4) * 10  # norm 20
        returned = clip_grad_norm_([p], max_norm=1.0)
        assert returned == pytest.approx(20.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0, rel=1e-6)

    def test_no_clip_below_threshold(self):
        p = Parameter(np.zeros(2))
        p.grad = np.array([0.3, 0.4])  # norm 0.5
        clip_grad_norm_([p], max_norm=1.0)
        np.testing.assert_allclose(p.grad, [0.3, 0.4])

    def test_ignores_gradless_params(self):
        p = Parameter(np.zeros(2))
        assert clip_grad_norm_([p], 1.0) == 0.0


class TestLosses:
    def test_cross_entropy_matches_manual(self, rng):
        logits = rng.normal(size=(4, 5))
        targets = np.array([0, 3, 2, 1])
        probs = np.exp(logits) / np.exp(logits).sum(axis=1, keepdims=True)
        expected = -np.log(probs[np.arange(4), targets]).mean()
        got = nn.cross_entropy(Tensor(logits), targets).item()
        assert got == pytest.approx(expected, rel=1e-9)

    def test_cross_entropy_grad(self, rng):
        targets = np.array([1, 0, 2])
        check_gradients(
            lambda l: nn.cross_entropy(l, targets), rng.normal(size=(3, 4))
        )

    def test_cross_entropy_reductions(self, rng):
        logits = Tensor(rng.normal(size=(4, 3)))
        targets = np.array([0, 1, 2, 0])
        total = nn.cross_entropy(logits, targets, reduction="sum").item()
        mean = nn.cross_entropy(logits, targets, reduction="mean").item()
        per = nn.cross_entropy(logits, targets, reduction="none")
        assert total == pytest.approx(mean * 4)
        assert per.shape == (4,)

    def test_nll_loss_requires_2d(self):
        with pytest.raises(ValueError):
            nn.nll_loss(Tensor(np.zeros(3)), np.array([0]))

    def test_unknown_reduction_raises(self, rng):
        with pytest.raises(ValueError):
            nn.cross_entropy(Tensor(rng.normal(size=(2, 2))), np.array([0, 1]), reduction="max")

    def test_bce_with_logits_matches_manual(self, rng):
        logits = rng.normal(size=(6,))
        targets = (rng.random(6) > 0.5).astype(float)
        probs = 1 / (1 + np.exp(-logits))
        expected = -(targets * np.log(probs) + (1 - targets) * np.log(1 - probs)).mean()
        got = nn.binary_cross_entropy_with_logits(Tensor(logits), targets).item()
        assert got == pytest.approx(expected, rel=1e-6)

    def test_bce_stable_with_extreme_logits(self):
        loss = nn.binary_cross_entropy_with_logits(
            Tensor([1000.0, -1000.0]), np.array([1.0, 0.0])
        )
        assert np.isfinite(loss.item())
        assert loss.item() == pytest.approx(0.0, abs=1e-6)

    def test_bce_grad(self, rng):
        targets = np.array([1.0, 0.0, 1.0])
        check_gradients(
            lambda l: nn.binary_cross_entropy_with_logits(l, targets),
            rng.normal(size=(3,)) + 0.05,
        )

    def test_classification_end_to_end(self, rng):
        # two separable gaussian blobs
        X = np.concatenate([rng.normal(size=(40, 2)) + 2, rng.normal(size=(40, 2)) - 2])
        y = np.array([0] * 40 + [1] * 40)
        lin = nn.Linear(2, 2)
        opt = nn.Adam(lin.parameters(), lr=0.05)
        for _ in range(80):
            opt.zero_grad()
            loss = nn.cross_entropy(lin(Tensor(X)), y)
            loss.backward()
            opt.step()
        preds = lin(Tensor(X)).data.argmax(axis=1)
        assert (preds == y).mean() > 0.95
