"""The public gradcheck utility itself."""

import numpy as np
import pytest

from repro.nn.gradcheck import gradcheck, numeric_gradient
from repro.nn.tensor import Tensor


class TestGradcheck:
    def test_passes_on_correct_op(self, rng):
        assert gradcheck(lambda a, b: a @ b, rng.normal(size=(3, 4)), rng.normal(size=(4, 2)))

    def test_fails_on_wrong_gradient(self, rng):
        # an op with a deliberately broken backward
        def broken(a: Tensor) -> Tensor:
            out_data = a.data * 2.0

            def backward(grad):
                out._send(a, grad * 3.0)  # wrong: should be 2.0

            out = Tensor._make(out_data, (a,), backward)
            return out

        with pytest.raises(AssertionError):
            gradcheck(broken, rng.normal(size=(2, 2)))

    def test_detects_missing_gradient(self, rng):
        with pytest.raises(AssertionError, match="gradient"):
            gradcheck(lambda a: Tensor(a.data * 2.0), rng.normal(size=(2,)))

    def test_numeric_gradient_of_square(self):
        x = Tensor(np.array([3.0]), requires_grad=True)
        grad = numeric_gradient(lambda a: (a * a).sum(), [x], 0)
        assert grad[0] == pytest.approx(6.0, rel=1e-5)

    def test_scalar_output_supported(self, rng):
        assert gradcheck(lambda a: a.sum(), rng.normal(size=(3, 3)))
