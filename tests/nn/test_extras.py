"""Schedulers, checkpointing, and the extended loss functions."""

import numpy as np
import pytest

from repro import nn
from repro.nn.module import Parameter
from repro.nn.tensor import Tensor
from tests.conftest import check_gradients


class TestSchedulers:
    def _opt(self):
        return nn.Adam([Parameter(np.zeros(2))], lr=0.1)

    def test_step_lr_halves(self):
        opt = self._opt()
        sched = nn.StepLR(opt, step_size=2, gamma=0.5)
        lrs = [sched.step() for _ in range(4)]
        assert lrs == [0.1, 0.05, 0.05, 0.025]

    def test_step_lr_invalid_step_size(self):
        with pytest.raises(ValueError):
            nn.StepLR(self._opt(), step_size=0)

    def test_exponential_lr(self):
        opt = self._opt()
        sched = nn.ExponentialLR(opt, gamma=0.5)
        sched.step()
        assert opt.lr == pytest.approx(0.05)
        sched.step()
        assert opt.lr == pytest.approx(0.025)

    def test_warmup_reaches_base(self):
        opt = self._opt()
        sched = nn.WarmupLR(opt, warmup_epochs=3)
        assert opt.lr < 0.1  # starts cold
        for _ in range(5):
            sched.step()
        assert opt.lr == pytest.approx(0.1)

    def test_warmup_monotone(self):
        opt = self._opt()
        sched = nn.WarmupLR(opt, warmup_epochs=4)
        lrs = [sched.step() for _ in range(6)]
        assert lrs == sorted(lrs)


class TestCheckpointing:
    def test_roundtrip_with_metadata(self, tmp_path):
        lin = nn.Linear(3, 2)
        path = str(tmp_path / "ckpt.npz")
        nn.save_checkpoint(lin, path, metadata={"epoch": 7, "mrr": 0.4})
        clone = nn.Linear(3, 2)
        meta = nn.load_checkpoint(clone, path)
        assert meta == {"epoch": 7, "mrr": 0.4, "dtype": "float64"}
        np.testing.assert_allclose(clone.weight.data, lin.weight.data)

    def test_extension_appended_automatically(self, tmp_path):
        lin = nn.Linear(2, 2)
        base = str(tmp_path / "model")
        nn.save_checkpoint(lin, base)  # numpy appends .npz
        clone = nn.Linear(2, 2)
        nn.load_checkpoint(clone, base)
        np.testing.assert_allclose(clone.weight.data, lin.weight.data)

    def test_mismatched_module_raises(self, tmp_path):
        lin = nn.Linear(3, 2)
        path = str(tmp_path / "c.npz")
        nn.save_checkpoint(lin, path)
        with pytest.raises(nn.CheckpointError, match="missing keys"):
            nn.load_checkpoint(nn.Embedding(4, 4), path)

    def test_empty_metadata_default(self, tmp_path):
        lin = nn.Linear(2, 2)
        path = str(tmp_path / "c.npz")
        nn.save_checkpoint(lin, path)
        assert nn.load_checkpoint(nn.Linear(2, 2), path) == {"dtype": "float64"}


class TestExtendedLosses:
    def test_label_smoothing_interpolates(self, rng):
        logits = Tensor(rng.normal(size=(4, 5)))
        targets = np.array([0, 1, 2, 3])
        plain = nn.cross_entropy(logits, targets).item()
        smooth = nn.cross_entropy_label_smoothing(logits, targets, smoothing=0.0).item()
        assert plain == pytest.approx(smooth)
        heavy = nn.cross_entropy_label_smoothing(logits, targets, smoothing=0.5).item()
        assert heavy != pytest.approx(plain)

    def test_label_smoothing_invalid(self, rng):
        with pytest.raises(ValueError):
            nn.cross_entropy_label_smoothing(
                Tensor(rng.normal(size=(1, 2))), np.array([0]), smoothing=1.0
            )

    def test_label_smoothing_grad(self, rng):
        targets = np.array([1, 0])
        check_gradients(
            lambda l: nn.cross_entropy_label_smoothing(l, targets, 0.2),
            rng.normal(size=(2, 3)),
        )

    def test_margin_ranking_zero_when_separated(self):
        pos = Tensor([5.0, 5.0])
        neg = Tensor([1.0, 1.0])
        assert nn.margin_ranking_loss(pos, neg, margin=1.0).item() == 0.0

    def test_margin_ranking_penalises_violations(self):
        pos = Tensor([1.0])
        neg = Tensor([2.0])
        assert nn.margin_ranking_loss(pos, neg, margin=1.0).item() == pytest.approx(2.0)

    def test_margin_ranking_grad(self, rng):
        check_gradients(
            lambda p, n: nn.margin_ranking_loss(p, n, 0.5),
            rng.normal(size=(4,)),
            rng.normal(size=(4,)) + 0.7,
        )
