"""Compiled-graph reuse across serving requests, surfaced in /stats."""

import numpy as np

from repro.baselines import build_model
from repro.graphs.compiled import reset_compiled_cache_stats
from repro.serving.engine import InferenceEngine
from repro.serving.store import OnlineHistoryStore


def _engine(tiny_dataset):
    store = OnlineHistoryStore(
        tiny_dataset.num_entities,
        tiny_dataset.num_relations,
        history_length=2,
        use_global=True,
    )
    store.warm_up(tiny_dataset.train, max_timestamps=4)
    model = build_model(
        "hisres", tiny_dataset.num_entities, tiny_dataset.num_relations, dim=8
    )
    # cache_entries=0 disables the score cache and state_cache_entries=0
    # the encoder-state cache, so every predict call actually reaches
    # the model (and hence the graph plane)
    return InferenceEngine(
        model, store, cache_entries=0, batch_window_s=0.0, state_cache_entries=0
    )


def test_stats_expose_graph_cache_counters(tiny_dataset):
    engine = _engine(tiny_dataset)
    stats = engine.stats()["store"]["graph_caches"]
    for key in (
        "snapshot_builds",
        "snapshot_hits",
        "merged_builds",
        "merged_hits",
        "global_builds",
        "global_hits",
        "compiled_builds",
        "compiled_hits",
    ):
        assert key in stats, f"missing {key} in /stats graph_caches"


def test_requests_within_a_window_version_reuse_compiled_graphs(tiny_dataset):
    engine = _engine(tiny_dataset)
    reset_compiled_cache_stats()
    engine.predict(subject=1, relation=0, top_k=3)
    first = engine.stats()["store"]["graph_caches"]
    engine.predict(subject=1, relation=1, top_k=3)
    second = engine.stats()["store"]["graph_caches"]
    # the second request re-encodes the same sealed window: every
    # snapshot/merged graph is the same instance, so its compiled
    # layouts are cache hits, not rebuilds
    assert second["compiled_hits"] > first["compiled_hits"]
    assert second["compiled_builds"] >= first["compiled_builds"]
    # rollover invalidates: new snapshot graphs mean new compiled builds
    version = engine.store.window_version
    t = engine.store.current_time + 1
    engine.ingest(np.array([[0, 0, 1, t], [2, 1, 3, t]]))
    engine.flush()
    assert engine.store.window_version > version
    builds_before = engine.stats()["store"]["graph_caches"]["compiled_builds"]
    engine.predict(subject=1, relation=0, top_k=3)
    builds_after = engine.stats()["store"]["graph_caches"]["compiled_builds"]
    assert builds_after > builds_before
