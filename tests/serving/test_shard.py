"""Entity sharding: partition, tiled range decode, top-k merge parity.

The load-bearing property of the cluster: for every shard count, the
merge of per-shard canonical top-ks equals the single-process top-k
*bitwise* — including ties, k larger than a shard, and shards wider
than the decode tile.
"""

import numpy as np
import pytest

from repro.core.execution import (
    DECODE_TILE,
    candidate_scores_range,
    merge_topk,
    topk_ranked,
)
from repro.serving.shard import EntityShard, partition_entities


class TestPartition:
    @pytest.mark.parametrize("num_shards", [1, 2, 4, 7])
    def test_covers_exactly_without_overlap(self, num_shards):
        shards = partition_entities(30, num_shards)
        assert len(shards) == num_shards
        assert shards[0].lo == 0
        assert shards[-1].hi == 30
        for prev, nxt in zip(shards, shards[1:]):
            assert prev.hi == nxt.lo
        widths = [s.width for s in shards]
        assert max(widths) - min(widths) <= 1  # near-equal

    def test_more_shards_than_entities(self):
        shards = partition_entities(3, 5)
        assert [s.width for s in shards] == [1, 1, 1, 0, 0]
        assert shards[-1].hi == 3

    def test_deterministic_pure_function(self):
        assert partition_entities(1000, 7) == partition_entities(1000, 7)

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            partition_entities(10, 0)

    def test_shard_roundtrips_through_dict(self):
        shard = partition_entities(30, 4)[2]
        assert EntityShard(**shard.as_dict()) == shard


class TestTiledRangeScores:
    """Range decode must be a bitwise sub-array of the full decode."""

    @pytest.mark.parametrize("num_entities", [50, DECODE_TILE - 1, DECODE_TILE + 37])
    @pytest.mark.parametrize("num_shards", [1, 2, 4, 7])
    def test_shard_slices_match_full_range(self, num_entities, num_shards, rng):
        queries = rng.standard_normal((5, 16))
        candidates = rng.standard_normal((num_entities, 16))
        full = candidate_scores_range(queries, candidates, 0, num_entities)
        for shard in partition_entities(num_entities, num_shards):
            piece = candidate_scores_range(queries, candidates, shard.lo, shard.hi)
            assert piece.shape == (5, shard.width)
            # bitwise, not allclose: the global tile grid guarantees it
            assert np.array_equal(piece, full[:, shard.lo:shard.hi])

    def test_empty_range(self, rng):
        queries = rng.standard_normal((3, 8))
        candidates = rng.standard_normal((20, 8))
        assert candidate_scores_range(queries, candidates, 10, 10).shape == (3, 0)


class TestTopkRanked:
    def test_canonical_tie_break_is_lowest_id_first(self):
        scores = np.array([1.0, 5.0, 5.0, 0.0, 5.0])
        ids, values = topk_ranked(scores, 3)
        assert ids.tolist() == [1, 2, 4]  # equal scores -> ascending ids
        assert values.tolist() == [5.0, 5.0, 5.0]

    def test_k_clamped_to_size(self):
        ids, values = topk_ranked(np.array([3.0, 1.0]), 10)
        assert ids.tolist() == [0, 1]

    def test_base_offsets_into_global_ids(self):
        ids, _ = topk_ranked(np.array([1.0, 9.0]), 1, base=100)
        assert ids.tolist() == [101]

    def test_empty_scores(self):
        ids, values = topk_ranked(np.zeros(0), 3)
        assert ids.size == 0 and values.size == 0


class TestMergeParity:
    """merge(per-shard top-k) == global top-k, bitwise, for all layouts."""

    @pytest.mark.parametrize("num_shards", [1, 2, 4, 7])
    @pytest.mark.parametrize("k", [1, 3, 10, 29])
    def test_merge_equals_global_topk(self, num_shards, k, rng):
        num_entities = 30  # k=10 exceeds every 7-shard width (<=5)
        for _ in range(20):
            scores = rng.standard_normal(num_entities)
            expected_ids, expected_vals = topk_ranked(scores, k)
            partials = [
                topk_ranked(
                    scores[s.lo:s.hi], min(k, max(s.width, 1)), base=s.lo
                )
                for s in partition_entities(num_entities, num_shards)
                if s.width > 0
            ]
            ids, vals = merge_topk(partials, k)
            assert ids.tolist() == expected_ids.tolist()
            # exact float equality — values pass through untouched
            assert vals.tolist() == expected_vals.tolist()

    @pytest.mark.parametrize("num_shards", [2, 4, 7])
    def test_merge_with_heavy_ties(self, num_shards, rng):
        # quantised scores force many exact ties across shard borders
        for _ in range(20):
            scores = np.round(rng.standard_normal(30) * 2) / 2
            expected_ids, expected_vals = topk_ranked(scores, 9)
            partials = [
                topk_ranked(scores[s.lo:s.hi], min(9, s.width), base=s.lo)
                for s in partition_entities(30, num_shards)
                if s.width > 0
            ]
            ids, vals = merge_topk(partials, 9)
            assert ids.tolist() == expected_ids.tolist()
            assert vals.tolist() == expected_vals.tolist()

    def test_merge_of_empty_partials(self):
        ids, vals = merge_topk([(np.zeros(0, dtype=np.int64), np.zeros(0))], 5)
        assert ids.size == 0
