"""OnlineHistoryStore: streaming ingestion == from-scratch rebuild."""

import numpy as np
import pytest

from repro.core.window import WindowBuilder
from repro.serving import OnlineHistoryStore


def _windows_equal(a, b):
    """Structural equality of two HistoryWindow objects."""
    assert len(a.snapshots) == len(b.snapshots)
    for ga, gb in zip(a.snapshots, b.snapshots):
        np.testing.assert_array_equal(ga.src, gb.src)
        np.testing.assert_array_equal(ga.rel, gb.rel)
        np.testing.assert_array_equal(ga.dst, gb.dst)
    assert len(a.merged) == len(b.merged)
    for ga, gb in zip(a.merged, b.merged):
        np.testing.assert_array_equal(ga.src, gb.src)
        np.testing.assert_array_equal(ga.rel, gb.rel)
        np.testing.assert_array_equal(ga.dst, gb.dst)
    assert a.deltas == b.deltas
    assert a.prediction_time == b.prediction_time
    assert (a.global_graph is None) == (b.global_graph is None)
    if a.global_graph is not None:
        for field in ("src", "rel", "dst"):
            va = np.sort(getattr(a.global_graph, field))
            vb = np.sort(getattr(b.global_graph, field))
            np.testing.assert_array_equal(va, vb)
    for field in ("history_masks", "history_counts"):
        va, vb = getattr(a, field), getattr(b, field)
        assert (va is None) == (vb is None)
        if va is not None:
            np.testing.assert_array_equal(va, vb)


def _store_and_reference(track_vocabulary=False, history_length=3):
    kwargs = dict(
        history_length=history_length,
        granularity=2,
        use_global=True,
        track_vocabulary=track_vocabulary,
    )
    store = OnlineHistoryStore(25, 5, **kwargs)
    reference = WindowBuilder(25, 5, **kwargs)
    return store, reference


class TestStreamingEquivalence:
    @pytest.mark.parametrize("track_vocabulary", [False, True])
    def test_event_by_event_matches_snapshot_rebuild(self, tiny_dataset, track_vocabulary):
        """Per-event ingestion must reach the exact WindowBuilder state."""
        store, reference = _store_and_reference(track_vocabulary=track_vocabulary)
        items = sorted(tiny_dataset.train.facts_by_time().items())[:8]
        queries = np.array([[s, r, 0, 0] for s in range(6) for r in range(5)],
                           dtype=np.int64)
        for t, quads in items:
            # prediction state before absorbing t must match
            window_a = store.window_for(queries, prediction_time=t)
            window_b = reference.window_for(queries, prediction_time=t)
            _windows_equal(window_a, window_b)
            # stream one event at a time vs. one absorb of the whole snapshot
            for row in quads:
                store.ingest(row[:3], timestamp=int(t))
            reference.absorb(quads)
            store.flush()
        assert store.stats()["sealed_snapshots"] == len(items)

    def test_rollover_on_time_advance_seals_previous_snapshot(self, tiny_dataset):
        store, reference = _store_and_reference()
        items = sorted(tiny_dataset.train.facts_by_time().items())[:4]
        # ingest without explicit flush: the NEXT timestamp seals the previous
        for t, quads in items:
            store.ingest(quads)
        for t, quads in items[:-1]:
            reference.absorb(quads)
        # last snapshot is still pending in the store
        queries = np.array([[0, 0, 0, 0]], dtype=np.int64)
        t_pred = int(items[-1][0])
        _windows_equal(
            store.window_for(queries, prediction_time=t_pred),
            reference.window_for(queries, prediction_time=t_pred),
        )
        assert store.pending_events == len(items[-1][1])

    def test_warm_up_matches_manual_replay(self, tiny_dataset):
        store, reference = _store_and_reference()
        absorbed = store.warm_up(tiny_dataset.train)
        for _, quads in sorted(tiny_dataset.train.facts_by_time().items()):
            reference.absorb(quads)
        assert absorbed == len(tiny_dataset.train.quads)
        queries = np.array([[1, 2, 0, 0], [3, 4, 0, 0]], dtype=np.int64)
        t_pred = store.current_time + 1
        _windows_equal(
            store.window_for(queries, prediction_time=t_pred),
            reference.window_for(queries, prediction_time=t_pred),
        )


class TestIngestSemantics:
    def test_version_bumps_only_on_rollover(self):
        store = OnlineHistoryStore(10, 3, history_length=2)
        v0 = store.window_version
        store.ingest([[0, 1, 2]], timestamp=0)
        store.ingest([[1, 1, 3]], timestamp=0)  # same snapshot, no bump
        assert store.window_version == v0
        store.ingest([[2, 0, 1]], timestamp=1)  # time advance seals t=0
        assert store.window_version == v0 + 1
        assert store.flush()  # seals t=1
        assert store.window_version == v0 + 2
        assert not store.flush()  # nothing pending

    def test_multi_timestamp_batch(self):
        store = OnlineHistoryStore(10, 3)
        result = store.ingest([[0, 0, 1, 0], [1, 1, 2, 1], [2, 2, 3, 2]])
        assert result["accepted"] == 3
        assert result["rollovers"] == 2  # t=0 and t=1 sealed, t=2 open
        assert store.current_time == 2
        assert store.pending_events == 1

    def test_out_of_order_rejected(self):
        store = OnlineHistoryStore(10, 3)
        store.ingest([[0, 0, 1]], timestamp=5)
        store.flush()
        with pytest.raises(ValueError, match="out-of-order"):
            store.ingest([[0, 0, 1]], timestamp=5)  # already sealed
        store.ingest([[0, 0, 1]], timestamp=6)
        with pytest.raises(ValueError, match="out-of-order"):
            store.ingest([[0, 0, 1]], timestamp=5)  # older than open snapshot

    def test_validation(self):
        store = OnlineHistoryStore(10, 3)
        with pytest.raises(ValueError, match="subject"):
            store.ingest([[10, 0, 1]], timestamp=0)
        with pytest.raises(ValueError, match="relation"):
            store.ingest([[0, 3, 1]], timestamp=0)
        with pytest.raises(ValueError, match="object"):
            store.ingest([[0, 0, -1]], timestamp=0)
        with pytest.raises(ValueError, match="timestamp is required"):
            store.ingest([[0, 0, 1]])
        with pytest.raises(ValueError, match="events must be"):
            store.ingest([[0, 0]], timestamp=0)

    def test_window_respects_history_length(self):
        store = OnlineHistoryStore(10, 3, history_length=2)
        for t in range(5):
            store.ingest([[t % 10, 0, (t + 1) % 10]], timestamp=t)
        store.flush()
        window = store.window_for(np.array([[0, 0, 0, 0]]), prediction_time=5)
        assert len(window.snapshots) == 2
        assert window.deltas == [2.0, 1.0]

    def test_reset_clears_state_but_advances_version(self):
        store = OnlineHistoryStore(10, 3)
        store.ingest([[0, 0, 1]], timestamp=0)
        store.flush()
        v = store.window_version
        store.reset()
        assert store.window_version > v
        assert store.current_time is None
        assert store.stats()["total_events"] == 0

    def test_stats_shape(self, tiny_dataset):
        store = OnlineHistoryStore(25, 5, history_length=3)
        store.warm_up(tiny_dataset.train)
        stats = store.stats()
        assert stats["window_snapshots"] == 3
        assert stats["pending_events"] == 0
        assert stats["global_indexed_facts"] > 0
        assert stats["sealed_snapshots"] > 3
