"""Serving scoped cold-start: sampled decode on state-cache misses."""

import numpy as np
import pytest

from repro.baselines import build_model
from repro.data import generate_dataset
from repro.nn.serialization import save_checkpoint
from repro.serving import InferenceEngine


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset("unit_tiny")


def _checkpoint(tmp_path, dataset, key="regcn", dim=16):
    model = build_model(key, dataset.num_entities, dataset.num_relations, dim=dim)
    path = str(tmp_path / f"{key}.npz")
    save_checkpoint(model, path, metadata={
        "format": 1,
        "model": key,
        "num_entities": dataset.num_entities,
        "num_relations": dataset.num_relations,
        "dim": dim,
        "window": {"history_length": 2, "granularity": 2,
                   "use_global": False, "track_vocabulary": False},
    })
    return path


class TestScopedColdStart:
    def test_cold_miss_served_scoped_then_warms_to_full(self, tmp_path, dataset):
        path = _checkpoint(tmp_path, dataset)
        engine = InferenceEngine.from_checkpoint(
            path, scoped_cold_start="4,2", batch_window_s=0.0
        )
        assert engine.scoped_plan is not None
        engine.store.warm_up(dataset.train)
        engine.predict(0, 0, top_k=5)
        modes = engine.stats()["encode_modes"]
        assert modes["scoped"] == 1 and modes["full"] == 0
        # background warm encode fills the state cache; the next query
        # on the same window goes through the full plan
        engine.join_warmups(timeout=30)
        engine.predict(1, 0, top_k=5)
        modes = engine.stats()["encode_modes"]
        assert modes["full"] == 1 and modes["scoped"] == 1
        assert engine.stats()["scoped_cold_start"] is not None

    def test_scoped_scores_not_cached_as_predictions(self, tmp_path, dataset):
        path = _checkpoint(tmp_path, dataset)
        engine = InferenceEngine.from_checkpoint(
            path, scoped_cold_start="4,2", batch_window_s=0.0
        )
        engine.store.warm_up(dataset.train)
        engine.predict(0, 0, top_k=5)
        # scoped scores are approximations: they must not poison the
        # prediction cache that full-plan answers are served from
        assert engine.cache.stats()["entries"] == 0
        engine.join_warmups(timeout=30)
        engine.predict(0, 0, top_k=5)
        assert engine.cache.stats()["entries"] == 1

    def test_full_coverage_spec_matches_full_plan_bitwise(self, tmp_path, dataset):
        path = _checkpoint(tmp_path, dataset)
        scoped_engine = InferenceEngine.from_checkpoint(
            path, scoped_cold_start="full", batch_window_s=0.0
        )
        full_engine = InferenceEngine.from_checkpoint(path, batch_window_s=0.0)
        for engine in (scoped_engine, full_engine):
            engine.store.warm_up(dataset.train)
        a = scoped_engine.predict(0, 0, top_k=5)
        b = full_engine.predict(0, 0, top_k=5)
        assert [(p["entity"], p["score"]) for p in a] == [
            (p["entity"], p["score"]) for p in b
        ]

    def test_disabled_without_spec_or_for_static_models(self, tmp_path, dataset):
        path = _checkpoint(tmp_path, dataset)
        assert InferenceEngine.from_checkpoint(path).scoped_plan is None
        static_path = _checkpoint(tmp_path, dataset, key="distmult", dim=8)
        engine = InferenceEngine.from_checkpoint(
            static_path, scoped_cold_start="4,2"
        )
        assert engine.scoped_plan is None

    def test_graph_cache_entries_override(self, tmp_path, dataset):
        path = _checkpoint(tmp_path, dataset)
        engine = InferenceEngine.from_checkpoint(path, graph_cache_entries=9)
        assert engine.store._builder.cache_capacity == 9
