"""InferenceEngine: checkpoint loading, caching, micro-batching."""

import threading

import numpy as np
import pytest

from repro.baselines import build_model
from repro.nn.serialization import save_checkpoint
from repro.serving import InferenceEngine, MicroBatcher, OnlineHistoryStore


def _checkpoint(tmp_path, key="distmult", dim=8, num_entities=25, num_relations=5,
                window=None):
    model = build_model(key, num_entities, num_relations, dim=dim)
    path = str(tmp_path / f"{key}.npz")
    save_checkpoint(model, path, metadata={
        "format": 1,
        "model": key,
        "num_entities": num_entities,
        "num_relations": num_relations,
        "dim": dim,
        "window": window or {"history_length": 2, "granularity": 2,
                             "use_global": False, "track_vocabulary": False},
    })
    return model, path


class TestFromCheckpoint:
    def test_builds_model_and_store(self, tmp_path):
        model, path = _checkpoint(tmp_path)
        engine = InferenceEngine.from_checkpoint(path)
        assert engine.model_key == "distmult"
        assert engine.store.num_entities == 25
        assert engine.store.num_relations == 5
        # weights actually restored
        for (_, a), (_, b) in zip(
            sorted(model.named_parameters()), sorted(engine.model.named_parameters())
        ):
            np.testing.assert_array_equal(a.data, b.data)

    def test_window_overrides(self, tmp_path):
        _, path = _checkpoint(tmp_path)
        engine = InferenceEngine.from_checkpoint(path, history_length=7)
        assert engine.store._builder.history_length == 7

    def test_missing_metadata_is_a_clear_error(self, tmp_path):
        model = build_model("distmult", 5, 2, dim=4)
        path = str(tmp_path / "bare.npz")
        save_checkpoint(model, path)  # no serving metadata
        with pytest.raises(ValueError, match="serving metadata"):
            InferenceEngine.from_checkpoint(path)


class TestPredict:
    def test_topk_shape_and_order(self, tmp_path, tiny_dataset):
        _, path = _checkpoint(tmp_path)
        engine = InferenceEngine.from_checkpoint(path, batch_window_s=0.0)
        engine.store.warm_up(tiny_dataset.train)
        predictions = engine.predict(0, 1, top_k=5)
        assert len(predictions) == 5
        assert [p["rank"] for p in predictions] == [1, 2, 3, 4, 5]
        scores = [p["score"] for p in predictions]
        assert scores == sorted(scores, reverse=True)

    def test_matches_raw_model_scores(self, tmp_path, tiny_dataset):
        _, path = _checkpoint(tmp_path)
        engine = InferenceEngine.from_checkpoint(path, batch_window_s=0.0)
        engine.store.warm_up(tiny_dataset.train)
        queries = np.zeros((1, 4), dtype=np.int64)
        queries[0, 0], queries[0, 1] = 3, 2
        window = engine.store.window_for(queries)
        expected = np.asarray(engine.model.predict_entities(window, queries))[0]
        np.testing.assert_allclose(engine.scores_for(3, 2), expected)

    def test_inverse_uses_doubled_relation_space(self, tmp_path, tiny_dataset):
        _, path = _checkpoint(tmp_path)
        engine = InferenceEngine.from_checkpoint(path, batch_window_s=0.0)
        engine.store.warm_up(tiny_dataset.train)
        direct = engine.predict(0, 1, top_k=3, inverse=False)
        inverse = engine.predict(0, 1, top_k=3, inverse=True)
        assert direct != inverse

    def test_validates_ranges(self, tmp_path):
        _, path = _checkpoint(tmp_path)
        engine = InferenceEngine.from_checkpoint(path, batch_window_s=0.0)
        with pytest.raises(ValueError, match="subject"):
            engine.predict(99, 0)
        with pytest.raises(ValueError, match="relation"):
            engine.predict(0, 10)  # 2*num_relations == 10 is out of range

    def test_hisres_end_to_end(self, tmp_path, tiny_dataset):
        """The flagship model serves through the same path (global graph on)."""
        _, path = _checkpoint(
            tmp_path, key="hisres", dim=8,
            window={"history_length": 3, "granularity": 2,
                    "use_global": True, "track_vocabulary": False},
        )
        engine = InferenceEngine.from_checkpoint(path, batch_window_s=0.0)
        engine.store.warm_up(tiny_dataset.train)
        predictions = engine.predict(1, 0, top_k=4)
        assert len(predictions) == 4
        assert all(np.isfinite(p["score"]) for p in predictions)


class TestCache:
    def test_repeat_query_hits_cache(self, tmp_path, tiny_dataset):
        _, path = _checkpoint(tmp_path)
        engine = InferenceEngine.from_checkpoint(path, batch_window_s=0.0)
        engine.store.warm_up(tiny_dataset.train)
        engine.predict(0, 1)
        calls = engine.stats()["predict_calls"]
        engine.predict(0, 1)
        assert engine.stats()["predict_calls"] == calls
        assert engine.cache.hits >= 1

    def test_rollover_invalidates(self, tmp_path, tiny_dataset):
        _, path = _checkpoint(tmp_path)
        engine = InferenceEngine.from_checkpoint(path, batch_window_s=0.0)
        engine.store.warm_up(tiny_dataset.train)
        engine.predict(0, 1)
        calls = engine.stats()["predict_calls"]
        t = engine.store.current_time + 1
        engine.ingest([[0, 1, 2]], timestamp=t)
        engine.flush()  # rollover -> new window_version
        engine.predict(0, 1)
        assert engine.stats()["predict_calls"] == calls + 1

    def test_hot_reload_invalidates_same_window_version(
        self, tmp_path, tiny_dataset
    ):
        # regression: the cache key once ignored model.version, so a
        # weight reload with an unchanged window served stale scores
        _, path = _checkpoint(tmp_path)
        engine = InferenceEngine.from_checkpoint(path, batch_window_s=0.0)
        engine.store.warm_up(tiny_dataset.train)
        before = engine.predict(0, 1, top_k=5)
        window_version = engine.store.window_version
        fresh = build_model("distmult", 25, 5, dim=8)
        new_path = str(tmp_path / "retrained.npz")
        save_checkpoint(fresh, new_path)
        info = engine.reload_weights(new_path)
        assert info["model_version"] > 0
        assert engine.store.window_version == window_version  # no rollover
        after = engine.predict(0, 1, top_k=5)
        assert after != before  # new weights, not the cached response
        # and the answer matches an engine that never saw the old weights
        control = InferenceEngine(
            fresh, engine.store, model_key="distmult", batch_window_s=0.0
        )
        assert after == control.predict(0, 1, top_k=5)

    def test_predict_many_single_forward_pass(self, tmp_path, tiny_dataset):
        _, path = _checkpoint(tmp_path)
        engine = InferenceEngine.from_checkpoint(path, batch_window_s=0.0)
        engine.store.warm_up(tiny_dataset.train)
        queries = [{"subject": s, "relation": r} for s in range(4) for r in range(3)]
        results = engine.predict_many(queries, default_top_k=2)
        assert len(results) == 12
        assert engine.stats()["predict_calls"] == 1
        assert all(len(r["predictions"]) == 2 for r in results)


class TestMicroBatcher:
    def test_concurrent_submits_coalesce(self, tmp_path, tiny_dataset):
        _, path = _checkpoint(tmp_path)
        engine = InferenceEngine.from_checkpoint(path, batch_window_s=0.25)
        engine.store.warm_up(tiny_dataset.train)
        barrier = threading.Barrier(6)
        results = {}

        def worker(i):
            barrier.wait()
            results[i] = engine.predict(i, i % 5, top_k=3)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(results) == 6
        stats = engine.stats()
        assert stats["batching"]["max_batch_size"] >= 2
        assert stats["predict_calls"] < 6

    def test_batched_results_match_sequential(self, tmp_path, tiny_dataset):
        _, path = _checkpoint(tmp_path)
        engine = InferenceEngine.from_checkpoint(path, batch_window_s=0.1)
        engine.store.warm_up(tiny_dataset.train)
        sequential = {
            (s, r): engine._execute_batch([(s, r)])[(s, r)]
            for s in range(3) for r in range(2)
        }
        engine.cache.clear()
        outputs = {}
        threads = [
            threading.Thread(
                target=lambda s=s, r=r: outputs.__setitem__((s, r), engine.scores_for(s, r))
            )
            for s in range(3) for r in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for pair, expected in sequential.items():
            np.testing.assert_allclose(outputs[pair], expected, rtol=1e-10)

    def test_execute_errors_propagate_to_all_waiters(self):
        def explode(pairs):
            raise RuntimeError("boom")

        batcher = MicroBatcher(explode, window_s=0.0)
        with pytest.raises(RuntimeError, match="boom"):
            batcher.submit((0, 0))
        # the batcher recovers for the next submit
        with pytest.raises(RuntimeError, match="boom"):
            batcher.submit((1, 1))


class TestHotPairRefresh:
    def test_refresh_refills_cache_for_hot_pairs(self, tmp_path, tiny_dataset):
        _, path = _checkpoint(tmp_path)
        engine = InferenceEngine.from_checkpoint(path, batch_window_s=0.0)
        engine.store.warm_up(tiny_dataset.train)
        expected = {(s, r): engine.scores_for(s, r) for s in range(3) for r in range(2)}
        assert engine.stats()["hot_pairs_tracked"] == 6
        t = engine.store.current_time + 1
        engine.ingest([[0, 1, 2]], timestamp=t)
        engine.flush()  # rollover: every cached score is now stale
        outcome = engine.refresh_hot_pairs()
        assert outcome["refreshed"] == 6
        assert outcome["window_version"] == engine.store.window_version
        # the refreshed entries serve without another predict call
        calls = engine.stats()["predict_calls"]
        fresh = {(s, r): engine.scores_for(s, r) for s in range(3) for r in range(2)}
        assert engine.stats()["predict_calls"] == calls
        # and they are the scores the cold path would compute
        for (s, r), scores in fresh.items():
            window = engine.store.window_for(
                np.array([[s, r, 0, 0]], dtype=np.int64)
            )
            cold = np.asarray(engine.model.predict_entities(
                window, np.array([[s, r, 0, 0]], dtype=np.int64)
            ))[0]
            np.testing.assert_allclose(scores, cold, rtol=1e-12)
        assert any(np.any(fresh[p] != expected[p]) for p in fresh)

    def test_refresh_with_no_traffic_is_a_noop(self, tmp_path, tiny_dataset):
        _, path = _checkpoint(tmp_path)
        engine = InferenceEngine.from_checkpoint(path, batch_window_s=0.0)
        engine.store.warm_up(tiny_dataset.train)
        assert engine.refresh_hot_pairs() == {"refreshed": 0}

    def test_hot_ring_is_bounded(self, tmp_path, tiny_dataset):
        _, path = _checkpoint(tmp_path)
        engine = InferenceEngine.from_checkpoint(path, batch_window_s=0.0)
        engine.store.warm_up(tiny_dataset.train)
        engine._hot_pairs_cap = 4
        for s in range(8):
            engine.scores_for(s, 0)
        assert engine.stats()["hot_pairs_tracked"] == 4
        # oldest pairs evicted, newest retained
        assert list(engine._hot_pairs) == [(4, 0), (5, 0), (6, 0), (7, 0)]
