"""GET /metrics: Prometheus exposition over the live serving plane."""

import re
import urllib.request

import json

import pytest

from repro.baselines import build_model
from repro.nn.serialization import save_checkpoint
from repro.serving import InferenceEngine, serve_in_thread

_LABEL = r'[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
_SAMPLE_RE = re.compile(
    rf"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{{{_LABEL}(,{_LABEL})*\}})? -?[0-9eE+.]+(\+Inf)?$"
)


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    from repro.data.profiles import DatasetProfile
    from repro.data.synthetic import SyntheticTKGGenerator

    dataset = SyntheticTKGGenerator(DatasetProfile(
        name="metrics_tiny", num_entities=20, num_relations=4,
        num_timestamps=16, facts_per_snapshot=8,
        time_granularity="1 step", seed=7,
    )).generate()
    model = build_model("distmult", 20, 4, dim=8)
    path = str(tmp_path_factory.mktemp("ckpt") / "model.npz")
    save_checkpoint(model, path, metadata={
        "model": "distmult", "num_entities": 20, "num_relations": 4, "dim": 8,
        "window": {"history_length": 2, "use_global": False},
    })
    engine = InferenceEngine.from_checkpoint(path, batch_window_s=0.0)
    engine.store.warm_up(dataset.train)
    server, thread = serve_in_thread(engine)
    yield server, engine
    server.shutdown()
    server.server_close()


def _get(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.headers, response.read().decode()


def _post(url, payload):
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode(), method="POST",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return json.loads(response.read().decode())


class TestMetricsEndpoint:
    def test_content_type_and_exposition_validity(self, served):
        server, _ = served
        headers, text = _get(server.url + "/metrics")
        assert headers["Content-Type"].startswith("text/plain")
        assert "version=0.0.4" in headers["Content-Type"]
        for line in text.strip().splitlines():
            if line.startswith("#"):
                assert re.match(r"^# (HELP|TYPE) ", line), line
            else:
                assert _SAMPLE_RE.match(line), f"bad exposition line: {line!r}"

    def test_request_latency_histogram_exported(self, served):
        server, _ = served
        _get(server.url + "/health")
        _, text = _get(server.url + "/metrics")
        assert 'repro_http_request_latency_seconds_bucket{route="GET /health",le="+Inf"}' in text
        assert 'repro_http_request_latency_seconds_count{route="GET /health"}' in text
        assert 'repro_http_requests_total{route="GET /health"}' in text

    def test_cache_and_engine_counters_exported(self, served):
        server, engine = served
        _post(server.url + "/predict", {"subject": 1, "relation": 1})
        _post(server.url + "/predict", {"subject": 1, "relation": 1})  # cache hit
        _, text = _get(server.url + "/metrics")
        hits = re.search(
            r'repro_prediction_cache_events_total\{event="hits"\} (\d+)', text
        )
        misses = re.search(
            r'repro_prediction_cache_events_total\{event="misses"\} (\d+)', text
        )
        assert hits and misses
        assert int(hits.group(1)) >= 1
        assert int(misses.group(1)) >= 1
        # bridged counts agree with the owner (the LRU cache)
        assert int(hits.group(1)) == engine.cache.stats()["hits"]
        assert "repro_engine_queries_served_total" in text
        assert "repro_compiled_graph_builds_total" in text
        assert "repro_window_cache_events_total" in text

    def test_encoder_state_cache_counters_exported(self, served):
        """Cold (s, r) pairs on a quiet window share one encode: the
        state-cache hit counter must be non-zero and exported."""
        server, engine = served
        # distinct cold pairs -> prediction-cache misses, but the window
        # content is unchanged (no global graph for distmult), so all but
        # the first decode from the cached encoder state
        for pair in ((2, 0), (3, 1), (4, 2), (5, 3)):
            _post(server.url + "/predict", {"subject": pair[0], "relation": pair[1]})
        _, text = _get(server.url + "/metrics")
        hit = re.search(
            r'repro_encoder_state_cache_events_total\{owner="serving",event="hit"\} (\d+)',
            text,
        )
        miss = re.search(
            r'repro_encoder_state_cache_events_total\{owner="serving",event="miss"\} (\d+)',
            text,
        )
        assert hit and miss, "encoder-state cache counters missing from /metrics"
        assert int(miss.group(1)) >= 1
        assert int(hit.group(1)) >= 1, "no state-cache hits on a quiet window"
        assert 'repro_encoder_state_cache_entries{owner="serving"}' in text
        # /stats reads the same underlying cache (the registry counters
        # are cumulative across every serving-owned cache in the
        # process, so exported >= this instance's counts)
        stats = engine.stats()["state_cache"]
        assert int(hit.group(1)) >= stats["hits"] >= 1
        assert int(miss.group(1)) >= stats["misses"] >= 1
        assert stats["hit_rate"] > 0.0

    def test_window_version_gauge_tracks_store(self, served):
        server, engine = served
        _, text = _get(server.url + "/metrics")
        version = re.search(r"^repro_window_version (\d+)$", text, re.M)
        assert version and int(version.group(1)) == engine.store.window_version
        _post(server.url + "/ingest", {
            "events": [[0, 0, 1]],
            "timestamp": engine.store.current_time + 1,
            "flush": True,
        })
        _, text = _get(server.url + "/metrics")
        version = re.search(r"^repro_window_version (\d+)$", text, re.M)
        assert int(version.group(1)) == engine.store.window_version

    def test_stats_and_metrics_agree(self, served):
        """/stats and /metrics must read the same underlying objects."""
        server, _ = served
        _get(server.url + "/health")
        _, stats_text = _get(server.url + "/stats")
        stats = json.loads(stats_text)["server"]["endpoints"]["GET /health"]
        _, text = _get(server.url + "/metrics")
        # /metrics was rendered after /stats, so it saw >= that count
        exported = int(re.search(
            r'repro_http_requests_total\{route="GET /health"\} (\d+)', text
        ).group(1))
        assert exported >= stats["requests"]
