"""In-process cluster: scatter/merge parity, degradation, drain, metrics.

Workers run as real HTTP servers on threads (full JSON round-trips),
so these tests cover everything except process isolation — which
``test_cluster_e2e.py`` adds on top.
"""

import urllib.request

import pytest

from repro.baselines import build_model
from repro.core.config import WindowConfig
from repro.serving import (
    InferenceEngine,
    OnlineHistoryStore,
    ServingClient,
    ServingError,
    ShardEngine,
    launch_local_cluster,
    partition_entities,
)


@pytest.fixture(scope="module")
def hisres_model(tiny_dataset):
    return build_model(
        "hisres", tiny_dataset.num_entities, tiny_dataset.num_relations, dim=8
    )


def _make_store(dataset):
    store = OnlineHistoryStore(
        dataset.num_entities,
        dataset.num_relations,
        window_config=WindowConfig(history_length=2),
    )
    store.warm_up(dataset.train)
    return store


def _single_engine(dataset, model):
    return InferenceEngine(
        model, _make_store(dataset), model_key="hisres", batch_window_s=0.0
    )


def _cluster(dataset, model, num_shards):
    engines = [
        ShardEngine(
            model, _make_store(dataset), shard, model_key="hisres", batch_window_s=0.0
        )
        for shard in partition_entities(dataset.num_entities, num_shards)
    ]
    return launch_local_cluster(engines)


def _query_stream(dataset, n=14, top_k=8):
    return [
        {
            "subject": (i * 3) % dataset.num_entities,
            "relation": i % dataset.num_relations,
            "top_k": top_k,
            "inverse": bool(i % 4 == 3),
        }
        for i in range(n)
    ]


class TestClusterParity:
    """Cluster /predict must equal the single-process answer bitwise."""

    @pytest.mark.parametrize("num_shards", [2, 4, 7])
    def test_bitwise_identical_topk(self, tiny_dataset, hisres_model, num_shards):
        queries = _query_stream(tiny_dataset)
        expected = _single_engine(tiny_dataset, hisres_model).predict_many(
            queries, default_top_k=8
        )
        cluster = _cluster(tiny_dataset, hisres_model, num_shards)
        try:
            response = ServingClient(cluster.url).predict_many(queries, top_k=8)
        finally:
            cluster.stop()
        assert "partial" not in response
        # dict equality covers entity ids, ranks, AND exact float64
        # scores: json round-trips repr(float) losslessly
        assert response["results"] == expected

    def test_k_larger_than_shard_width(self, tiny_dataset, hisres_model):
        # 7 shards of a 25-entity vocabulary: width <= 4, ask for top-20
        queries = _query_stream(tiny_dataset, n=6, top_k=20)
        expected = _single_engine(tiny_dataset, hisres_model).predict_many(
            queries, default_top_k=20
        )
        cluster = _cluster(tiny_dataset, hisres_model, 7)
        try:
            response = ServingClient(cluster.url).predict_many(queries, top_k=20)
        finally:
            cluster.stop()
        assert response["results"] == expected

    def test_parity_survives_ingest_rollover(self, tiny_dataset, hisres_model):
        queries = _query_stream(tiny_dataset, n=6)
        single = _single_engine(tiny_dataset, hisres_model)
        cluster = _cluster(tiny_dataset, hisres_model, 2)
        try:
            client = ServingClient(cluster.url)
            t = client.health()["workers"][0]["health"]["current_time"] + 1
            events = [[0, 1, 2], [3, 0, 4], [5, 2, 6]]
            client.ingest(events, timestamp=t, flush=True)
            single.ingest(events, timestamp=t)
            single.flush()
            response = client.predict_many(queries, top_k=8)
            expected = single.predict_many(queries, default_top_k=8)
        finally:
            cluster.stop()
        assert response["results"] == expected

    def test_single_query_schema_matches_server(self, tiny_dataset, hisres_model):
        single = _single_engine(tiny_dataset, hisres_model)
        cluster = _cluster(tiny_dataset, hisres_model, 2)
        try:
            got = ServingClient(cluster.url).predict(4, 2, top_k=5)
        finally:
            cluster.stop()
        assert got == {
            "subject": 4,
            "relation": 2,
            "inverse": False,
            "predictions": single.predict(4, 2, top_k=5),
        }


class TestDegradedMode:
    def test_dead_worker_yields_partial_not_error(self, tiny_dataset, hisres_model):
        queries = _query_stream(tiny_dataset, n=4, top_k=5)
        cluster = _cluster(tiny_dataset, hisres_model, 3)
        try:
            client = ServingClient(cluster.url)
            healthy = client.predict_many(queries, top_k=5)
            assert "partial" not in healthy
            cluster.kill_worker(1)
            degraded = client.predict_many(queries, top_k=5)
            assert degraded["partial"] is True
            assert [m["index"] for m in degraded["missing_shards"]] == [1]
            # surviving shards still answer every query
            assert len(degraded["results"]) == len(queries)
            for row in degraded["results"]:
                assert len(row["predictions"]) == 5
            # results restricted to live shards are still correctly ranked
            dead = cluster.router.workers[1].shard
            for row in degraded["results"]:
                for p in row["predictions"]:
                    assert not (dead.lo <= p["entity"] < dead.hi)
        finally:
            cluster.stop()

    def test_on_failure_callback_fires(self, tiny_dataset, hisres_model):
        failed = []
        engines = [
            ShardEngine(
                hisres_model, _make_store(tiny_dataset), shard,
                model_key="hisres", batch_window_s=0.0,
            )
            for shard in partition_entities(tiny_dataset.num_entities, 2)
        ]
        cluster = launch_local_cluster(engines, on_failure=failed.append)
        try:
            cluster.kill_worker(0)
            ServingClient(cluster.url).predict_many(
                _query_stream(tiny_dataset, n=2), top_k=3
            )
        finally:
            cluster.stop()
        assert [w.shard.index for w in failed] == [0]

    def test_health_reports_degraded_then_revive(self, tiny_dataset, hisres_model):
        cluster = _cluster(tiny_dataset, hisres_model, 2)
        try:
            client = ServingClient(cluster.url)
            assert client.health()["status"] == "ok"
            cluster.kill_worker(1)
            health = client.health()
            assert health["status"] == "degraded"
            assert health["live_workers"] == 1
            # revive against a fresh replacement worker server
            from repro.serving import create_worker_server
            import threading

            replacement = ShardEngine(
                hisres_model,
                _make_store(tiny_dataset),
                cluster.router.workers[1].shard,
                model_key="hisres",
                batch_window_s=0.0,
            )
            server = create_worker_server(replacement)
            threading.Thread(target=server.serve_forever, daemon=True).start()
            cluster.worker_servers[1] = server
            cluster.router.revive(cluster.router.workers[1], url=server.url)
            assert client.health()["status"] == "ok"
        finally:
            cluster.stop()

    def test_all_workers_dead_is_503(self, tiny_dataset, hisres_model):
        cluster = _cluster(tiny_dataset, hisres_model, 2)
        try:
            cluster.kill_worker(0)
            cluster.kill_worker(1)
            with pytest.raises(ServingError) as exc:
                ServingClient(cluster.url).predict(0, 0)
            assert exc.value.status == 503
        finally:
            cluster.stop()


class TestIngestFanout:
    def test_ingest_reaches_every_worker_and_journal(self, tiny_dataset, hisres_model):
        cluster = _cluster(tiny_dataset, hisres_model, 3)
        try:
            client = ServingClient(cluster.url)
            t = client.health()["workers"][0]["health"]["current_time"] + 1
            result = client.ingest([[1, 2, 3]], timestamp=t, flush=True)
            assert result["flushed"] is True
            versions = {
                ws.engine.store.window_version for ws in cluster.worker_servers
            }
            assert len(versions) == 1  # all workers rolled over together
            assert cluster.router.journal.stats()["entries"] == 1
        finally:
            cluster.stop()


class TestDrain:
    def test_draining_rejects_work_but_keeps_reads(self, tiny_dataset, hisres_model):
        cluster = _cluster(tiny_dataset, hisres_model, 2)
        try:
            client = ServingClient(cluster.url)
            cluster.server.begin_drain()
            health = client.health()
            assert health["status"] == "draining"
            with pytest.raises(ServingError) as exc:
                client.predict(0, 0)
            assert exc.value.status == 503
            assert client.stats()  # reads stay available
        finally:
            cluster.stop()

    def test_drain_waits_for_inflight(self, tiny_dataset, hisres_model):
        cluster = _cluster(tiny_dataset, hisres_model, 2)
        try:
            cluster.server.request_started()
            assert cluster.server.drain(timeout=0.05) is False
            cluster.server.request_finished()
            assert cluster.server.drain(timeout=0.05) is True
        finally:
            cluster.stop()


class TestClusterMetrics:
    def test_per_shard_series_on_router_metrics(self, tiny_dataset, hisres_model):
        cluster = _cluster(tiny_dataset, hisres_model, 2)
        try:
            ServingClient(cluster.url).predict_many(
                _query_stream(tiny_dataset, n=3), top_k=4
            )
            text = urllib.request.urlopen(cluster.url + "/metrics").read().decode()
        finally:
            cluster.stop()
        for shard in ("0", "1"):
            assert f'repro_cluster_requests_total{{shard="{shard}"}}' in text
            assert f'repro_shard_decode_seconds_total{{shard="{shard}"}}' in text
        assert "repro_cluster_scatter_seconds" in text
        assert "repro_cluster_gather_seconds" in text

    def test_state_tier_metrics_exposed(self, tiny_dataset, hisres_model, tmp_path):
        from repro.serving import SharedEncoderStateStore, TieredStateCache

        engines = [
            ShardEngine(
                hisres_model,
                _make_store(tiny_dataset),
                shard,
                model_key="hisres",
                batch_window_s=0.0,
                state_cache=TieredStateCache(
                    SharedEncoderStateStore(
                        str(tmp_path), owner=f"mshard{shard.index}"
                    ),
                    owner=f"mshard{shard.index}",
                ),
            )
            for shard in partition_entities(tiny_dataset.num_entities, 2)
        ]
        cluster = launch_local_cluster(engines)
        try:
            ServingClient(cluster.url).predict_many(
                _query_stream(tiny_dataset, n=3), top_k=4
            )
            text = urllib.request.urlopen(cluster.url + "/metrics").read().decode()
        finally:
            cluster.stop()
        assert 'repro_state_tier_events_total{owner="mshard0",event="publish"}' in text
        total_encodes = sum(
            e.state_cache.tier.events["publish"] for e in engines
        )
        assert total_encodes == 1  # single-flight: one encode cluster-wide
