"""Subprocess cluster smoke: supervisor + real worker processes.

The CI cluster job runs exactly this file.  A hisres checkpoint is
served by a :class:`ClusterSupervisor` (router in-process, 2 decode
workers as ``repro.cli cluster-worker`` subprocesses) and must match a
single-process :class:`InferenceEngine` answer for answer — bitwise,
through two JSON hops.
"""

import urllib.request

import pytest

from repro.baselines import build_model
from repro.data import generate_dataset
from repro.nn.serialization import save_checkpoint
from repro.serving import ClusterConfig, ClusterSupervisor, InferenceEngine, ServingClient

WARMUP = "unit_tiny"


@pytest.fixture(scope="module")
def checkpoint(tmp_path_factory):
    dataset = generate_dataset(WARMUP)
    model = build_model(
        "hisres", dataset.num_entities, dataset.num_relations, dim=8
    )
    path = str(tmp_path_factory.mktemp("cluster") / "hisres.npz")
    save_checkpoint(model, path, metadata={
        "format": 1,
        "model": "hisres",
        "num_entities": dataset.num_entities,
        "num_relations": dataset.num_relations,
        "dim": 8,
        "window": {"history_length": 3, "granularity": 1,
                   "use_global": True, "track_vocabulary": False},
    })
    return path


@pytest.fixture(scope="module")
def cluster(checkpoint, tmp_path_factory):
    supervisor = ClusterSupervisor(ClusterConfig(
        checkpoint=checkpoint,
        num_workers=2,
        port=0,
        state_dir=str(tmp_path_factory.mktemp("state-tier")),
        warmup=WARMUP,
        ready_timeout_s=180.0,
    ))
    server = supervisor.start()
    import threading

    threading.Thread(target=server.serve_forever, daemon=True).start()
    yield supervisor
    supervisor.stop()
    server.shutdown()
    server.server_close()


@pytest.fixture(scope="module")
def single_engine(checkpoint):
    engine = InferenceEngine.from_checkpoint(checkpoint, batch_window_s=0.0)
    dataset = generate_dataset(WARMUP)
    engine.store.warm_up(dataset.train)
    engine.store.warm_up(dataset.valid)
    return engine


def _queries(n=10, top_k=6):
    return [
        {"subject": (i * 7) % 30, "relation": i % 6, "top_k": top_k,
         "inverse": bool(i % 3 == 2)}
        for i in range(n)
    ]


class TestClusterSmoke:
    def test_health_shows_two_live_workers(self, cluster):
        health = ServingClient(cluster.server.url).health()
        assert health["status"] == "ok"
        assert health["live_workers"] == 2
        ranges = sorted(
            (w["shard"]["lo"], w["shard"]["hi"]) for w in health["workers"]
        )
        assert ranges == [(0, 15), (15, 30)]

    def test_predict_parity_with_single_process(self, cluster, single_engine):
        queries = _queries()
        expected = single_engine.predict_many(queries, default_top_k=6)
        got = ServingClient(cluster.server.url).predict_many(queries, top_k=6)
        assert "partial" not in got
        assert got["results"] == expected

    def test_ingest_then_parity_again(self, cluster, single_engine):
        client = ServingClient(cluster.server.url)
        t = client.health()["workers"][0]["health"]["current_time"] + 1
        events = [[0, 1, 2], [4, 3, 9], [11, 5, 7]]
        client.ingest(events, timestamp=t, flush=True)
        single_engine.ingest(events, timestamp=t)
        single_engine.flush()
        queries = _queries(n=6)
        got = client.predict_many(queries, top_k=6)
        expected = single_engine.predict_many(queries, default_top_k=6)
        assert got["results"] == expected

    def test_metrics_expose_per_shard_series(self, cluster):
        text = urllib.request.urlopen(
            cluster.server.url + "/metrics"
        ).read().decode()
        for shard in ("0", "1"):
            assert f'repro_cluster_requests_total{{shard="{shard}"}}' in text
        assert "repro_cluster_gather_seconds" in text

    def test_killed_worker_gives_partial_then_recovers(self, cluster):
        client = ServingClient(cluster.server.url, timeout=60.0)
        cluster.processes[1].proc.kill()
        cluster.processes[1].proc.wait(timeout=10.0)
        degraded = client.predict_many(_queries(n=3), top_k=4)
        assert degraded.get("partial") is True
        assert [m["index"] for m in degraded["missing_shards"]] == [1]
        # the supervisor restarts the worker and replays the journal
        import time

        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            if client.health()["status"] == "ok":
                break
            time.sleep(0.5)
        health = client.health()
        assert health["status"] == "ok"
        assert cluster.restarts.get(1, 0) >= 1
        recovered = client.predict_many(_queries(n=3), top_k=4)
        assert "partial" not in recovered
