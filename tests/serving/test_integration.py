"""End-to-end offline flow: train --save -> serve -> ingest -> predict.

Covers the acceptance loop of the serving subsystem: a model trained
and checkpointed through the CLI is served over HTTP by the `serve`
command (run as a real subprocess), fed new events with `ingest`, and
queried with `predict`; `/stats` must show request counts, latency
percentiles, and cache hits.
"""

import json
import os
import subprocess
import sys
import time

import pytest

from repro.cli import main
from repro.serving import ServingClient, ServingError


@pytest.fixture(scope="module")
def checkpoint(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("e2e") / "model.npz")
    code = main([
        "train", "distmult", "unit_tiny",
        "--dim", "8", "--epochs", "1", "--patience", "1",
        "--save", path,
    ])
    assert code == 0
    assert os.path.exists(path)
    return path


class TestTrainSaveEval:
    def test_train_reports_checkpoint(self, checkpoint, capsys):
        # metrics of eval --load-checkpoint must reproduce the saved model
        assert main(["eval", "unit_tiny", "--load-checkpoint", checkpoint]) == 0
        row = json.loads(capsys.readouterr().out)
        assert row["split"] == "test"
        assert 0 <= row["mrr"] <= 100
        assert row["model"] == "DistMult"

    def test_offline_predict_from_checkpoint(self, checkpoint, capsys):
        assert main([
            "predict", "3", "1",
            "--checkpoint", checkpoint, "--warmup", "unit_tiny", "--top-k", "4",
        ]) == 0
        result = json.loads(capsys.readouterr().out)
        assert len(result["predictions"]) == 4
        assert result["predictions"][0]["rank"] == 1


@pytest.fixture(scope="module")
def live_server(checkpoint):
    """`python -m repro.cli serve` as a real subprocess on an OS-picked port."""
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__)))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", checkpoint,
         "--port", "0", "--warmup", "unit_tiny", "--batch-window-ms", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
    )
    line = process.stdout.readline()  # "serving distmult at http://... "
    assert "http://" in line, f"server did not start: {line!r}"
    url = line.split("at ", 1)[1].split()[0]
    # wait until it actually answers
    client = ServingClient(url, timeout=10)
    deadline = time.monotonic() + 30
    while True:
        try:
            client.health()
            break
        except ServingError:
            if time.monotonic() > deadline:
                process.kill()
                raise
            time.sleep(0.1)
    yield url
    process.terminate()
    process.wait(timeout=10)


class TestServeLoop:
    def test_health_over_http(self, live_server):
        body = ServingClient(live_server).health()
        assert body["status"] == "ok"
        assert body["model"] == "distmult"

    def test_cli_ingest_then_predict(self, live_server, capsys):
        t = ServingClient(live_server).health()["current_time"] + 1
        code = main([
            "ingest", "--url", live_server,
            "--events", json.dumps([[0, 1, 2], [3, 0, 4]]),
            "--timestamp", str(t), "--flush",
        ])
        assert code == 0
        ingested = json.loads(capsys.readouterr().out)
        assert ingested["accepted"] == 2
        assert ingested["flushed"] is True

        code = main(["predict", "3", "1", "--url", live_server, "--top-k", "5"])
        assert code == 0
        result = json.loads(capsys.readouterr().out)
        assert len(result["predictions"]) == 5
        ranks = [p["rank"] for p in result["predictions"]]
        assert ranks == [1, 2, 3, 4, 5]

    def test_cli_ingest_tsv(self, live_server, tmp_path, capsys):
        t = ServingClient(live_server).health()["current_time"] + 1
        tsv = tmp_path / "events.tsv"
        tsv.write_text(f"1\t2\t3\t{t}\n4\t0\t5\t{t}\n")
        code = main(["ingest", "--url", live_server, "--tsv", str(tsv), "--flush"])
        assert code == 0
        assert json.loads(capsys.readouterr().out)["accepted"] == 2

    def test_stats_show_counts_latency_and_cache_hits(self, live_server, capsys):
        client = ServingClient(live_server)
        client.predict(7, 2)
        client.predict(7, 2)  # identical query -> cache hit
        stats = client.stats()
        predict = stats["server"]["endpoints"]["POST /predict"]
        assert predict["requests"] >= 2
        assert predict["latency_ms"]["p50"] >= 0
        assert predict["latency_ms"]["p99"] >= predict["latency_ms"]["p50"]
        assert stats["engine"]["cache"]["hits"] >= 1
        assert stats["engine"]["queries_served"] >= 2
        assert stats["engine"]["store"]["total_events"] > 0
