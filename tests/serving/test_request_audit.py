"""Audit plane: request-id echo, /debug/requests ring, access log."""

import json
import logging
import time
import urllib.error
import urllib.request

import pytest

from repro.baselines import build_model
from repro.nn.serialization import save_checkpoint
from repro.serving import InferenceEngine, RequestAudit, serve_in_thread
from repro.serving.server import REQUEST_ID_HEADER, new_request_id


class TestRequestAuditRing:
    def test_ring_is_bounded_but_total_keeps_counting(self):
        audit = RequestAudit(capacity=3)
        for i in range(7):
            audit.record("POST /predict", 200, latency_ms=float(i))
        assert len(audit) == 3
        assert audit.total == 7
        # newest first, oldest evicted
        assert [e["latency_ms"] for e in audit.entries()] == [6.0, 5.0, 4.0]

    def test_slowest_ranks_by_latency(self):
        audit = RequestAudit(capacity=10)
        for ms in (5.0, 50.0, 1.0, 20.0):
            audit.record("POST /predict", 200, latency_ms=ms)
        assert [e["latency_ms"] for e in audit.slowest(2)] == [50.0, 20.0]

    def test_detail_fields_flatten_and_none_drops(self):
        audit = RequestAudit(capacity=4)
        entry = audit.record(
            "POST /predict", 200, 1.5,
            request_id="abc", trace_id="def",
            encode_mode="full", partial=None,
        )
        assert entry["encode_mode"] == "full"
        assert "partial" not in entry
        assert entry["request_id"] == "abc" and entry["trace_id"] == "def"

    def test_zero_capacity_disables(self):
        audit = RequestAudit(capacity=0)
        assert not audit.enabled
        assert audit.record("GET /health", 200, 1.0) is None
        assert audit.snapshot()["entries"] == []

    def test_snapshot_shapes(self):
        audit = RequestAudit(capacity=4)
        for ms in (3.0, 9.0):
            audit.record("POST /predict", 200, ms)
        newest = audit.snapshot()
        assert newest["order"] == "newest" and newest["returned"] == 2
        slowest = audit.snapshot(slowest=1)
        assert slowest["order"] == "slowest"
        assert slowest["entries"][0]["latency_ms"] == 9.0
        assert slowest["total"] == 2


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    from repro.data.profiles import DatasetProfile
    from repro.data.synthetic import SyntheticTKGGenerator

    dataset = SyntheticTKGGenerator(DatasetProfile(
        name="audit_tiny", num_entities=20, num_relations=4,
        num_timestamps=16, facts_per_snapshot=8,
        time_granularity="1 step", seed=7,
    )).generate()
    model = build_model("distmult", 20, 4, dim=8)
    path = str(tmp_path_factory.mktemp("ckpt") / "model.npz")
    save_checkpoint(model, path, metadata={
        "model": "distmult", "num_entities": 20, "num_relations": 4, "dim": 8,
        "window": {"history_length": 2, "use_global": False},
    })
    engine = InferenceEngine.from_checkpoint(path, batch_window_s=0.0)
    engine.store.warm_up(dataset.train)
    server, _thread = serve_in_thread(engine)
    yield server
    server.shutdown()
    server.server_close()


def _call(url, payload=None, headers=None, method=None):
    """Raw request returning (status, headers, body-dict)."""
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(
        url, data=data, method=method or ("POST" if data else "GET"),
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, dict(response.headers), json.loads(response.read().decode())
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), json.loads(exc.read().decode())


class TestRequestIdEcho:
    def test_caller_id_is_echoed(self, served):
        rid = new_request_id()
        status, headers, _ = _call(
            served.url + "/health", headers={REQUEST_ID_HEADER: rid}
        )
        assert status == 200
        assert headers[REQUEST_ID_HEADER] == rid

    def test_id_is_minted_when_absent(self, served):
        _, headers, _ = _call(served.url + "/health")
        minted = headers[REQUEST_ID_HEADER]
        assert len(minted) == 16 and int(minted, 16) >= 0

    def test_error_body_carries_request_id(self, served):
        rid = new_request_id()
        status, headers, body = _call(
            served.url + "/predict", payload={"subject": 1},  # missing relation
            headers={REQUEST_ID_HEADER: rid},
        )
        assert status == 400
        assert body["request_id"] == rid
        assert headers[REQUEST_ID_HEADER] == rid

    def test_metrics_response_carries_header_too(self, served):
        request = urllib.request.Request(served.url + "/metrics")
        with urllib.request.urlopen(request, timeout=10) as response:
            assert response.headers[REQUEST_ID_HEADER]


class TestDebugRequests:
    def test_recent_requests_are_listed(self, served):
        rid = new_request_id()
        _call(served.url + "/predict",
              payload={"subject": 2, "relation": 1, "top_k": 3},
              headers={REQUEST_ID_HEADER: rid})
        # the audit entry lands right after the response bytes go out;
        # poll briefly so the read does not race the handler's epilogue
        deadline = time.monotonic() + 2.0
        while True:
            _, _, body = _call(served.url + "/debug/requests")
            mine = [e for e in body["entries"] if e["request_id"] == rid]
            if mine or time.monotonic() > deadline:
                break
            time.sleep(0.01)
        assert body["capacity"] == served.audit.capacity
        assert len(mine) == 1
        entry = mine[0]
        assert entry["route"] == "POST /predict"
        assert entry["status"] == 200
        assert entry["latency_ms"] >= 0
        assert len(entry["trace_id"]) == 32
        # engine detail rides along: which encode path served the batch
        assert entry["encode_mode"] in ("full", "scoped", "cached")

    def test_debug_endpoint_does_not_audit_itself(self, served):
        _call(served.url + "/debug/requests")
        _, _, body = _call(served.url + "/debug/requests")
        assert all(e["route"] != "GET /debug/requests" for e in body["entries"])

    def test_slowest_query_orders_by_latency(self, served):
        for _ in range(3):
            _call(served.url + "/predict",
                  payload={"subject": 3, "relation": 0, "top_k": 2})
        _, _, body = _call(served.url + "/debug/requests?slowest=2")
        assert body["order"] == "slowest"
        assert body["returned"] <= 2
        latencies = [e["latency_ms"] for e in body["entries"]]
        assert latencies == sorted(latencies, reverse=True)

    def test_bad_slowest_is_400(self, served):
        status, _, body = _call(served.url + "/debug/requests?slowest=banana")
        assert status == 400
        assert "slowest" in body["error"]


class TestAccessLog:
    def test_one_structured_event_per_request(self, served, caplog):
        rid = new_request_id()
        with caplog.at_level(logging.INFO, logger="repro.serving.access"):
            _call(served.url + "/health", headers={REQUEST_ID_HEADER: rid})
            # the event fires just after the response is written; wait it out
            deadline = time.monotonic() + 2.0
            while time.monotonic() < deadline and not any(
                getattr(r, "event", None) == "http.access"
                and r.fields.get("request_id") == rid
                for r in caplog.records
            ):
                time.sleep(0.01)
        records = [r for r in caplog.records
                   if getattr(r, "event", None) == "http.access"
                   and r.fields.get("request_id") == rid]
        assert len(records) == 1
        fields = records[0].fields
        assert fields["route"] == "GET /health"
        assert fields["status"] == 200
        assert fields["latency_ms"] >= 0
        assert len(fields["trace_id"]) == 32
