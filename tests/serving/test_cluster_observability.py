"""Cluster observability acceptance: merged traces, federated metrics.

One ``/predict`` against a 2-worker in-process cluster must produce a
single merged Chrome trace whose spans share one trace id across the
router and both worker lanes, and the router's federated ``/metrics``
aggregates must equal the sum of per-worker scrapes for the decode and
encode counters.
"""

import json
import time
import urllib.request

import pytest

from repro.baselines import build_model
from repro.core.config import WindowConfig
from repro.obs.metrics import get_registry, parse_prometheus_text
from repro.obs.trace import TraceContext, disable_tracing, enable_tracing
from repro.serving import (
    OnlineHistoryStore,
    ShardEngine,
    federated_name,
    launch_local_cluster,
    partition_entities,
)
from repro.serving.server import REQUEST_ID_HEADER


@pytest.fixture(scope="module")
def cluster(tiny_dataset):
    model = build_model(
        "hisres", tiny_dataset.num_entities, tiny_dataset.num_relations, dim=8
    )

    def make_store():
        store = OnlineHistoryStore(
            tiny_dataset.num_entities,
            tiny_dataset.num_relations,
            window_config=WindowConfig(history_length=2),
        )
        store.warm_up(tiny_dataset.train)
        return store

    engines = [
        ShardEngine(model, make_store(), shard, model_key="hisres", batch_window_s=0.0)
        for shard in partition_entities(tiny_dataset.num_entities, 2)
    ]
    local = launch_local_cluster(engines)
    yield local
    local.stop()


@pytest.fixture(autouse=True)
def _tracing_off():
    yield
    disable_tracing()


def _post(url, payload, headers=None):
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode(), method="POST",
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return dict(response.headers), json.loads(response.read().decode())


def _family_values(text, name, label_filter=None):
    """All sample values of one family in an exposition text."""
    return [
        s.value for s in parse_prometheus_text(text)
        if s.name == name
        and all(s.labels.get(k) == v for k, v in (label_filter or {}).items())
    ]


class TestMergedTrace:
    def test_single_predict_yields_one_cross_process_trace(self, cluster, tmp_path):
        tracer = enable_tracing(reset=True)
        ctx = TraceContext.new()  # act as an already-traced client
        queries = [
            {"subject": i % 30, "relation": i % 6, "top_k": 5} for i in range(4)
        ]
        headers, body = _post(
            cluster.url + "/predict",
            {"queries": queries, "top_k": 5},
            headers={TraceContext.HEADER: ctx.to_traceparent()},
        )
        assert len(body["results"]) == 4
        disable_tracing()

        spans = [s for s in tracer.spans() if s.trace_id == ctx.trace_id]
        names = [s.name for s in spans]
        # router-side spans and both workers' decode spans, one trace id
        assert "router.predict" in names
        assert names.count("cluster.scatter") == 2
        assert names.count("shard.decode") == 2
        assert any(s.name == "http.request" and s.attrs.get("route") == "POST /predict"
                   for s in spans)
        decode_requests = [
            s for s in spans
            if s.name == "http.request" and s.attrs.get("route") == "POST /decode"
        ]
        assert len(decode_requests) == 2

        # spans from >= 2 distinct worker processes, plus the router's own
        worker_lanes = {s.process for s in spans if s.process}
        assert worker_lanes == {"worker-shard0", "worker-shard1"}

        # parent/child edges are intact: every span hangs off the client
        # context or another span of the same trace
        by_id = {s.span_id: s for s in spans}
        for s in spans:
            assert s.parent_span_id is not None
            assert s.parent_span_id == ctx.span_id or s.parent_span_id in by_id
        roots = [s for s in spans if s.parent_span_id == ctx.span_id]
        assert [s.name for s in roots] == ["http.request"]
        for req in decode_requests:
            assert by_id[req.parent_span_id].name == "cluster.scatter"

        # the merged trace exports as one valid Chrome trace file
        path = tracer.write_chrome_trace(str(tmp_path / "cluster_trace.json"))
        with open(path) as fh:
            payload = json.load(fh)
        events = [e for e in payload["traceEvents"] if e["ph"] == "X"
                  and e["args"].get("trace_id") == ctx.trace_id]
        assert len(events) == len(spans)
        assert {e["args"]["trace_id"] for e in events} == {ctx.trace_id}
        lanes = {e["args"]["name"] for e in payload["traceEvents"] if e["ph"] == "M"}
        assert {"worker-shard0", "worker-shard1"} <= lanes
        # worker spans render in different process lanes than router spans
        pid_of = {}
        for e in events:
            pid_of.setdefault(e["name"], set()).add(e["pid"])
        assert len(pid_of["shard.decode"]) == 2
        assert not (pid_of["shard.decode"] & pid_of["router.predict"])

    def test_untraced_predict_ships_no_spans(self, cluster):
        # without --trace the decode payload must stay lean
        _, body = _post(
            cluster.url + "/predict", {"subject": 1, "relation": 1, "top_k": 3}
        )
        assert "spans" not in body


class TestFederatedMetrics:
    def _scrape(self, url):
        with urllib.request.urlopen(url + "/metrics", timeout=30) as response:
            return response.read().decode()

    def test_cluster_sum_equals_sum_of_worker_scrapes(self, cluster):
        # traffic first, then scrape: counters must hold still in between
        for i in range(3):
            _post(cluster.url + "/predict",
                  {"subject": (3 * i) % 30, "relation": i % 6, "top_k": 4})

        worker_texts = [self._scrape(ws.url) for ws in cluster.worker_servers]
        router_text = self._scrape(cluster.url)

        # decode counter: per-worker sum vs the shard="sum" aggregate.
        # The family is already shard-labeled, and the in-process workers
        # share one registry, so the same series shows up in both worker
        # scrapes — dedup by shard exactly as the federator does.
        decode = "repro_shard_decode_requests_total"
        decode_by_shard = {}
        for text in worker_texts:
            for sample in parse_prometheus_text(text):
                if sample.name == decode:
                    decode_by_shard[sample.labels.get("shard")] = sample.value
        worker_sum = sum(decode_by_shard.values())
        # earlier test files may leave other shard children in the shared
        # registry; this cluster's own two shards must be among them
        assert {"0", "1"} <= set(decode_by_shard) and worker_sum > 0
        (federated,) = _family_values(
            router_text, federated_name(decode), {"shard": "sum"}
        )
        assert federated == worker_sum

        # encode counter, per mode label
        encode = "repro_engine_encode_total"
        worker_encode = sum(
            sum(_family_values(t, encode, {"mode": "full"})) for t in worker_texts
        )
        assert worker_encode > 0
        (federated_encode,) = _family_values(
            router_text, federated_name(encode), {"shard": "sum", "mode": "full"}
        )
        assert federated_encode == worker_encode

    def test_max_and_per_shard_children_exported(self, cluster):
        text = self._scrape(cluster.url)
        name = federated_name("repro_shard_decode_requests_total")
        (max_value,) = _family_values(text, name, {"shard": "max"})
        (sum_value,) = _family_values(text, name, {"shard": "sum"})
        # enumerate the real per-shard children (stale shards from other
        # test files' clusters ride along in the shared registry)
        per_shard = {
            sample.labels["shard"]: sample.value
            for sample in parse_prometheus_text(text)
            if sample.name == name
            and sample.labels.get("shard") not in ("sum", "max")
        }
        assert {"0", "1"} <= set(per_shard)
        assert max_value == max(per_shard.values())
        assert sum_value == sum(per_shard.values())

    def test_federation_meta_metrics(self, cluster):
        text = self._scrape(cluster.url)
        (live,) = _family_values(text, "repro_cluster_live_workers")
        assert live == 2
        scrapes = sum(_family_values(text, "repro_cluster_scrapes_total"))
        assert scrapes > 0

    def test_federated_families_are_not_reingested(self, cluster):
        # shared-registry feedback guard: no repro_cluster_cluster_*
        self._scrape(cluster.url)
        text = self._scrape(cluster.url)
        assert "repro_cluster_cluster_" not in text


class TestRouterAuditPlane:
    def test_debug_requests_has_per_shard_breakdown(self, cluster):
        rid = "deadbeefcafef00d"
        _post(cluster.url + "/predict",
              {"subject": 5, "relation": 2, "top_k": 3},
              headers={REQUEST_ID_HEADER: rid})
        # the audit entry lands just after the response goes out — poll
        deadline = time.monotonic() + 2.0
        entries = []
        while not entries and time.monotonic() < deadline:
            entries = [
                e for e in cluster.server.audit.entries()
                if e["request_id"] == rid
            ]
            time.sleep(0.01)
        (entry,) = entries
        assert entry["route"] == "POST /predict"
        shards = sorted(entry["shards"], key=lambda leg: leg["shard"])
        assert [leg["shard"] for leg in shards] == [0, 1]
        for leg in shards:
            assert leg["ok"] is True
            assert leg["latency_ms"] >= 0

    def test_partial_reply_carries_request_id(self, cluster):
        # kill one worker: the degraded answer must stay correlatable.
        # runs last in the file — the cluster fixture is module-scoped
        # and the dead worker stays dead.
        cluster.kill_worker(1)
        rid = "0123456789abcdef"
        _, body = _post(cluster.url + "/predict",
                        {"subject": 2, "relation": 1, "top_k": 3},
                        headers={REQUEST_ID_HEADER: rid})
        assert body["partial"] is True
        assert body["request_id"] == rid
