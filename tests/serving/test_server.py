"""HTTP frontend: routes, schemas, error handling, stats counters."""

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.baselines import build_model
from repro.nn.serialization import save_checkpoint
from repro.serving import InferenceEngine, ServingClient, ServingError, serve_in_thread


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    """A live server over a distmult engine warmed up on a tiny TKG."""
    from repro.data.profiles import DatasetProfile
    from repro.data.synthetic import SyntheticTKGGenerator

    dataset = SyntheticTKGGenerator(DatasetProfile(
        name="serve_tiny", num_entities=25, num_relations=5,
        num_timestamps=24, facts_per_snapshot=10,
        time_granularity="1 step", seed=99,
    )).generate()
    model = build_model("distmult", 25, 5, dim=8)
    path = str(tmp_path_factory.mktemp("ckpt") / "model.npz")
    save_checkpoint(model, path, metadata={
        "model": "distmult", "num_entities": 25, "num_relations": 5, "dim": 8,
        "window": {"history_length": 2, "use_global": False},
    })
    engine = InferenceEngine.from_checkpoint(path, batch_window_s=0.0)
    engine.store.warm_up(dataset.train)
    server, thread = serve_in_thread(engine)
    yield server, engine
    server.shutdown()
    server.server_close()


def _post(url, payload):
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode(), method="POST",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return json.loads(response.read().decode())


class TestRoutes:
    def test_health(self, served):
        server, engine = served
        body = ServingClient(server.url).health()
        assert body["status"] == "ok"
        assert body["model"] == "distmult"
        assert body["num_entities"] == 25

    def test_predict_single(self, served):
        server, _ = served
        body = ServingClient(server.url).predict(0, 1, top_k=4)
        assert len(body["predictions"]) == 4
        assert body["predictions"][0]["rank"] == 1
        assert isinstance(body["predictions"][0]["score"], float)

    def test_predict_batch(self, served):
        server, _ = served
        body = ServingClient(server.url).predict_many(
            [{"subject": 1, "relation": 0}, {"subject": 2, "relation": 3, "top_k": 2}],
            top_k=5,
        )
        assert len(body["results"]) == 2
        assert len(body["results"][0]["predictions"]) == 5
        assert len(body["results"][1]["predictions"]) == 2

    def test_ingest_then_version_advances(self, served):
        server, engine = served
        client = ServingClient(server.url)
        version = engine.store.window_version
        t = engine.store.current_time + 1
        body = client.ingest([[0, 1, 2], [3, 2, 4]], timestamp=t, flush=True)
        assert body["accepted"] == 2
        assert body["flushed"] is True
        assert body["window_version"] == version + 1

    def test_ingest_quads(self, served):
        server, engine = served
        t = engine.store.current_time + 1
        body = ServingClient(server.url).ingest([[0, 1, 2, t], [1, 0, 3, t]])
        assert body["accepted"] == 2
        assert body["current_time"] == t

    def test_stats_reports_endpoints_and_cache(self, served):
        server, _ = served
        client = ServingClient(server.url)
        client.predict(4, 2)
        client.predict(4, 2)  # cache hit
        body = client.stats()
        endpoints = body["server"]["endpoints"]
        assert "POST /predict" in endpoints
        assert endpoints["POST /predict"]["requests"] >= 2
        for q in ("p50", "p95", "p99", "mean"):
            assert endpoints["POST /predict"]["latency_ms"][q] >= 0
        assert body["engine"]["cache"]["hits"] >= 1
        assert body["server"]["requests_per_s"] > 0
        assert body["engine"]["store"]["window_snapshots"] >= 1


class TestErrors:
    def test_unknown_route_404(self, served):
        server, _ = served
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(server.url + "/nope", timeout=10)
        assert err.value.code == 404

    def test_bad_json_400(self, served):
        server, _ = served
        request = urllib.request.Request(
            server.url + "/predict", data=b"{not json", method="POST")
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=10)
        assert err.value.code == 400

    def test_missing_fields_400(self, served):
        server, _ = served
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(server.url + "/predict", {"subject": 1})
        assert err.value.code == 400

    def test_out_of_range_query_400(self, served):
        server, _ = served
        with pytest.raises(ServingError) as err:
            ServingClient(server.url).predict(9999, 0)
        assert err.value.status == 400
        assert "subject" in str(err.value)

    def test_out_of_order_ingest_400(self, served):
        server, _ = served
        with pytest.raises(ServingError) as err:
            ServingClient(server.url).ingest([[0, 0, 1]], timestamp=0)
        assert err.value.status == 400
        assert "out-of-order" in str(err.value)

    def test_ingest_requires_one_payload_kind(self, served):
        server, _ = served
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(server.url + "/ingest", {"events": [[0, 0, 1]],
                                           "quads": [[0, 0, 1, 2]]})
        assert err.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(server.url + "/ingest", {"events": [[0, 0, 1]]})  # no timestamp
        assert err.value.code == 400

    def test_errors_counted_in_stats(self, served):
        server, _ = served
        client = ServingClient(server.url)
        with pytest.raises(ServingError):
            client.predict(9999, 0)
        stats = client.stats()
        assert stats["server"]["endpoints"]["POST /predict"]["errors"] >= 1
