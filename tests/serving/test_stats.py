"""Serving stats: nearest-rank percentile edge cases, registry backing."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.serving.stats import EndpointStats, ServerStats, percentile


class TestPercentile:
    def test_empty_returns_zero(self):
        assert percentile([], 50) == 0.0

    def test_single_sample_every_q(self):
        for q in (0, 1, 50, 99, 100):
            assert percentile([7.0], q) == 7.0

    def test_q0_is_min_q100_is_max(self):
        samples = [5.0, 1.0, 9.0, 3.0]
        assert percentile(samples, 0) == 1.0
        assert percentile(samples, 100) == 9.0

    def test_nearest_rank_on_small_window(self):
        # The old round()-based rank picked the 3rd-smallest here
        # (banker's rounding of 1.5); nearest-rank says ceil(2) -> 2nd.
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.0

    def test_ties(self):
        assert percentile([2.0, 2.0, 2.0, 9.0], 50) == 2.0
        assert percentile([2.0, 2.0, 2.0, 9.0], 99) == 9.0

    def test_out_of_range_q_clamped(self):
        samples = [1.0, 2.0]
        assert percentile(samples, -5) == 1.0
        assert percentile(samples, 250) == 2.0

    def test_input_order_irrelevant(self):
        assert percentile([4.0, 1.0, 3.0, 2.0], 50) == percentile(
            [1.0, 2.0, 3.0, 4.0], 50
        )


class TestEndpointStats:
    def test_standalone_records_and_snapshots(self):
        ep = EndpointStats()
        ep.record(0.010)
        ep.record(0.030)
        ep.record(0.5, error=True)
        snap = ep.snapshot()
        assert snap["requests"] == 3
        assert snap["errors"] == 1
        # the error latency is not folded into the percentiles
        assert snap["latency_ms"]["p99"] == pytest.approx(30.0)
        assert snap["latency_ms"]["mean"] == pytest.approx(20.0)

    def test_empty_snapshot(self):
        snap = EndpointStats().snapshot()
        assert snap["requests"] == 0
        assert snap["latency_ms"]["p50"] == 0.0


class TestServerStats:
    def test_snapshot_shape_and_rates(self):
        clock_value = [0.0]
        stats = ServerStats(clock=lambda: clock_value[0], registry=MetricsRegistry())
        started = stats.timer()
        clock_value[0] = 0.25
        stats.record("GET /health", started)
        clock_value[0] = 2.0
        snap = stats.snapshot()
        assert snap["uptime_s"] == 2.0
        assert snap["total_requests"] == 1
        assert snap["requests_per_s"] == 0.5
        assert snap["endpoints"]["GET /health"]["latency_ms"]["p50"] == 250.0

    def test_metrics_registry_sees_the_same_counts(self):
        registry = MetricsRegistry()
        stats = ServerStats(registry=registry)
        stats.endpoint("POST /predict").record(0.002)
        stats.endpoint("POST /predict").record(0.004, error=True)
        text = registry.render_prometheus()
        assert 'repro_http_requests_total{route="POST /predict"} 2' in text
        assert 'repro_http_errors_total{route="POST /predict"} 1' in text
        assert 'repro_http_request_latency_seconds_count{route="POST /predict"} 1' in text
        # one source of truth: the JSON snapshot reads the same objects
        assert stats.snapshot()["endpoints"]["POST /predict"]["requests"] == 2

    def test_endpoint_is_cached_per_route(self):
        stats = ServerStats(registry=MetricsRegistry())
        assert stats.endpoint("a") is stats.endpoint("a")
        assert stats.endpoint("a") is not stats.endpoint("b")
