"""Shared encoder-state tier: round-trip, single-flight, fallback."""

import os
import threading

import numpy as np
import pytest

from repro.baselines import build_model
from repro.core.config import WindowConfig
from repro.serving import (
    OnlineHistoryStore,
    SharedEncoderStateStore,
    TieredStateCache,
)


@pytest.fixture
def window(tiny_dataset):
    store = OnlineHistoryStore(
        tiny_dataset.num_entities,
        tiny_dataset.num_relations,
        window_config=WindowConfig(history_length=2),
    )
    store.warm_up(tiny_dataset.train)
    queries = np.zeros((1, 4), dtype=np.int64)
    return store.window_for(queries)


@pytest.fixture
def model(tiny_dataset):
    return build_model(
        "regcn", tiny_dataset.num_entities, tiny_dataset.num_relations, dim=8
    )


class _CountingModel:
    """Wraps a model to count live encodes (split protocol preserved)."""

    supports_encode_split = True

    def __init__(self, model):
        self._model = model
        self.encodes = 0

    def __getattr__(self, name):
        return getattr(self._model, name)

    def encode(self, window):
        self.encodes += 1
        return self._model.encode(window)


class TestRoundTrip:
    def test_store_load_bitwise(self, tmp_path, model, window):
        tier = SharedEncoderStateStore(str(tmp_path), owner="t")
        state = model.encode(window)
        key = ("regcn", 0, "float64", window.fingerprint())
        assert tier.store(key, state)
        loaded = tier.load(key)
        assert loaded is not None
        np.testing.assert_array_equal(
            loaded.entity_matrix.data, state.entity_matrix.data
        )
        np.testing.assert_array_equal(
            loaded.relation_matrix.data, state.relation_matrix.data
        )
        assert loaded.entity_matrix.data.dtype == np.float64
        assert loaded.prediction_time == state.prediction_time

    def test_load_missing_key(self, tmp_path):
        tier = SharedEncoderStateStore(str(tmp_path), owner="t")
        assert tier.load(("nope", 0, "float64", 123)) is None

    def test_digest_collision_degrades_to_miss(self, tmp_path, model, window):
        tier = SharedEncoderStateStore(str(tmp_path), owner="t")
        key = ("regcn", 0, "float64", window.fingerprint())
        tier.store(key, model.encode(window))
        # same file path forged for a different key must not serve
        other = ("regcn", 1, "float64", window.fingerprint())
        os.rename(tier.path_for(key), tier.path_for(other))
        assert tier.load(other) is None

    def test_corrupt_file_is_a_miss(self, tmp_path, model, window):
        tier = SharedEncoderStateStore(str(tmp_path), owner="t")
        key = ("regcn", 0, "float64", window.fingerprint())
        tier.store(key, model.encode(window))
        with open(tier.path_for(key), "wb") as handle:
            handle.write(b"not an npz")
        assert tier.load(key) is None


class TestLocking:
    def test_acquire_release_cycle(self, tmp_path):
        tier = SharedEncoderStateStore(str(tmp_path), owner="t")
        key = ("m", 0, "float64", 1)
        assert tier.try_acquire(key)
        assert not tier.try_acquire(key)  # held
        tier.release(key)
        assert tier.try_acquire(key)

    def test_stale_lock_is_broken(self, tmp_path):
        tier = SharedEncoderStateStore(str(tmp_path), owner="t", lock_stale_s=0.0)
        key = ("m", 0, "float64", 1)
        assert tier.try_acquire(key)
        # age 0 > stale 0 is false; force the mtime into the past
        past = os.path.getmtime(tier._lock_path(key)) - 10
        os.utime(tier._lock_path(key), (past, past))
        assert tier.try_acquire(key)  # broke the stale lock and re-claimed

    def test_wait_for_returns_published_state(self, tmp_path, model, window):
        tier = SharedEncoderStateStore(str(tmp_path), owner="t", lock_timeout_s=5.0)
        key = ("regcn", 0, "float64", window.fingerprint())
        assert tier.try_acquire(key)
        state = model.encode(window)

        def publish():
            tier.store(key, state)
            tier.release(key)

        timer = threading.Timer(0.05, publish)
        timer.start()
        try:
            waited = tier.wait_for(key)
        finally:
            timer.join()
        assert waited is not None
        np.testing.assert_array_equal(
            waited.entity_matrix.data, state.entity_matrix.data
        )

    def test_wait_for_gives_up_on_timeout(self, tmp_path):
        tier = SharedEncoderStateStore(str(tmp_path), owner="t")
        key = ("m", 0, "float64", 1)
        assert tier.try_acquire(key)  # never published, never released
        assert tier.wait_for(key, timeout=0.05) is None


class TestTieredCache:
    def test_second_cache_hits_tier_without_encoding(self, tmp_path, model, window):
        counting = _CountingModel(model)
        first = TieredStateCache(
            SharedEncoderStateStore(str(tmp_path), owner="a"), owner="a"
        )
        second = TieredStateCache(
            SharedEncoderStateStore(str(tmp_path), owner="b"), owner="b"
        )
        s1 = first.get_or_encode(counting, window, model_key="regcn")
        assert counting.encodes == 1
        assert first.tier.events["publish"] == 1
        s2 = second.get_or_encode(counting, window, model_key="regcn")
        assert counting.encodes == 1  # tier hit, no second encode
        assert second.tier.events["hit"] == 1
        np.testing.assert_array_equal(s1.entity_matrix.data, s2.entity_matrix.data)

    def test_memory_hit_never_touches_tier(self, tmp_path, model, window):
        cache = TieredStateCache(
            SharedEncoderStateStore(str(tmp_path), owner="a"), owner="a"
        )
        cache.get_or_encode(model, window, model_key="regcn")
        events_before = dict(cache.tier.events)
        cache.get_or_encode(model, window, model_key="regcn")
        assert cache.hits == 1
        assert cache.tier.events == events_before

    def test_lock_loser_falls_back_to_local_encode(self, tmp_path, model, window):
        counting = _CountingModel(model)
        tier = SharedEncoderStateStore(str(tmp_path), owner="a", lock_timeout_s=0.05)
        cache = TieredStateCache(tier, owner="a")
        # an unrelated process "holds" the single-flight lock and stalls
        key = cache._key(counting, "regcn", window.fingerprint())
        assert tier.try_acquire(key)
        state = cache.get_or_encode(counting, window, model_key="regcn")
        assert state is not None
        assert counting.encodes == 1  # encoded locally despite losing the lock
        assert tier.events["fallback"] == 1

    def test_stats_include_tier(self, tmp_path, model, window):
        cache = TieredStateCache(
            SharedEncoderStateStore(str(tmp_path), owner="a"), owner="a"
        )
        cache.get_or_encode(model, window, model_key="regcn")
        stats = cache.stats()
        assert stats["tier"]["entries"] == 1
        assert stats["tier"]["events"]["publish"] == 1
