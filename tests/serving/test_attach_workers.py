"""Router over pre-spawned workers: ``attach_workers`` / ``--worker-urls``."""

import threading

import pytest

from repro.baselines import build_model
from repro.data import generate_dataset
from repro.nn.serialization import save_checkpoint
from repro.serving import (
    ClusterRouter,
    ServingClient,
    create_router_server,
    create_worker_server,
)
from repro.serving.cluster import attach_workers, build_shard_engine


@pytest.fixture(scope="module")
def workers(tmp_path_factory):
    dataset = generate_dataset("unit_tiny")
    tmp = tmp_path_factory.mktemp("attach")
    model = build_model("distmult", dataset.num_entities, dataset.num_relations, dim=8)
    path = str(tmp / "m.npz")
    save_checkpoint(model, path, metadata={
        "format": 1,
        "model": "distmult",
        "num_entities": dataset.num_entities,
        "num_relations": dataset.num_relations,
        "dim": 8,
        "window": {"history_length": 2, "granularity": 2,
                   "use_global": False, "track_vocabulary": False},
    })
    servers = []
    for i in range(2):
        engine = build_shard_engine(path, shard_index=i, num_shards=2,
                                    batch_window_s=0.0)
        engine.store.warm_up(dataset.train)
        server = create_worker_server(engine, port=0)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        servers.append(server)
    yield servers
    for server in servers:
        server.shutdown()
        server.server_close()


class TestAttachWorkers:
    def test_attach_sorts_and_validates(self, workers):
        urls = [server.url for server in workers]
        pairs = attach_workers(urls[::-1])  # any order in, index order out
        assert [shard.index for _, shard in pairs] == [0, 1]
        assert pairs[0][1].lo == 0
        assert pairs[0][1].hi == pairs[1][1].lo

    def test_attached_router_serves_predictions(self, workers):
        pairs = attach_workers([server.url for server in workers])
        router = ClusterRouter(pairs)
        server = create_router_server(router, port=0)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        try:
            out = ServingClient(server.url).predict(0, 0, top_k=5)
            assert len(out["predictions"]) == 5
            assert not out.get("partial")
        finally:
            server.shutdown()
            server.server_close()

    def test_incomplete_cover_is_rejected(self, workers):
        with pytest.raises(RuntimeError, match="cluster size"):
            attach_workers([workers[0].url])

    def test_unreachable_worker_is_a_clear_error(self):
        with pytest.raises(RuntimeError, match="unreachable"):
            attach_workers(["http://127.0.0.1:1"])

    def test_non_shard_endpoint_is_rejected(self, workers):
        # the router's own /health has no shard assignment; attaching a
        # router (or plain server) must fail loudly, not mis-wire
        pairs = attach_workers([server.url for server in workers])
        router = ClusterRouter(pairs)
        server = create_router_server(router, port=0)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        try:
            with pytest.raises(RuntimeError, match="shard"):
                attach_workers([server.url])
        finally:
            server.shutdown()
            server.server_close()

    def test_empty_url_list_is_rejected(self):
        with pytest.raises(ValueError):
            attach_workers([])
