"""End-to-end integration tests across the full stack."""

import numpy as np
import pytest

from repro.baselines import build_model
from repro.core import HisRES, HisRESConfig
from repro.data import generate_dataset
from repro.training import Trainer


class TestHisRESEndToEnd:
    def test_training_beats_random_baseline(self, tiny_dataset):
        """After a few epochs HisRES must clearly beat chance.

        With |E| = 25, a random scorer's filtered MRR is around
        sum(1/k)/25 ~ 0.15; we require comfortably above that.
        """
        cfg = HisRESConfig(embedding_dim=16, history_length=2, decoder_channels=4)
        model = HisRES(tiny_dataset.num_entities, tiny_dataset.num_relations, cfg)
        trainer = Trainer(model, tiny_dataset, history_length=2,
                          learning_rate=0.01, seed=0)
        trainer.fit(epochs=6, patience=5)
        assert trainer.evaluate("test").mrr > 0.25

    def test_global_encoder_contributes(self, tiny_dataset):
        """Full HisRES should not be worse than w/o-GH by a wide margin
        (the Table 4 direction, with tolerance for tiny-data noise)."""
        def run(use_global):
            cfg = HisRESConfig(embedding_dim=16, history_length=2,
                               decoder_channels=4, use_global=use_global)
            model = HisRES(tiny_dataset.num_entities, tiny_dataset.num_relations, cfg)
            trainer = Trainer(model, tiny_dataset, history_length=2,
                              use_global=use_global, learning_rate=0.01, seed=1)
            trainer.fit(epochs=6, patience=5)
            return trainer.evaluate("test").mrr

        assert run(True) > run(False) - 0.1

    def test_state_dict_roundtrip_preserves_predictions(self, tiny_dataset):
        cfg = HisRESConfig(embedding_dim=8, history_length=2, decoder_channels=4)
        model = HisRES(tiny_dataset.num_entities, tiny_dataset.num_relations, cfg)
        trainer = Trainer(model, tiny_dataset, history_length=2, seed=0)
        trainer.train_epoch()
        state = model.state_dict()
        before = trainer.evaluate("test").mrr
        clone = HisRES(tiny_dataset.num_entities, tiny_dataset.num_relations, cfg)
        clone.load_state_dict(state)
        trainer2 = Trainer(clone, tiny_dataset, history_length=2, seed=0)
        after = trainer2.evaluate("test").mrr
        assert before == pytest.approx(after)


class TestCrossModelContract:
    """Trainer must be able to fit every registered model end to end."""

    @pytest.mark.parametrize("key", ["distmult", "cygnet", "regcn", "logcl"])
    def test_one_epoch_roundtrip(self, tiny_dataset, key):
        from repro.baselines import MODEL_REGISTRY

        spec = MODEL_REGISTRY[key]
        model = build_model(key, tiny_dataset.num_entities,
                            tiny_dataset.num_relations, dim=8)
        trainer = Trainer(model, tiny_dataset, history_length=2,
                          use_global=spec.requirements.global_graph,
                          track_vocabulary=spec.requirements.vocabulary,
                          learning_rate=0.01, seed=0)
        loss = trainer.train_epoch()
        assert np.isfinite(loss)
        result = trainer.evaluate("valid")
        assert 0 <= result.mrr <= 1


class TestDatasetModelCompatibility:
    def test_all_profiles_feed_hisres(self):
        """Every built-in profile must produce data HisRES can consume."""
        for name in ["icews14s_small", "gdelt_small"]:
            ds = generate_dataset(name)
            cfg = HisRESConfig(embedding_dim=8, history_length=2, decoder_channels=4)
            model = HisRES(ds.num_entities, ds.num_relations, cfg)
            trainer = Trainer(model, ds, history_length=2, seed=0)
            loss = trainer.train_epoch(max_timestamps=4)
            assert np.isfinite(loss)


class TestTopLevelImports:
    def test_lazy_conveniences(self):
        import repro

        assert repro.HisRES is not None
        assert repro.Trainer is not None
        assert callable(repro.generate_dataset)

    def test_unknown_attribute_raises(self):
        import repro

        with pytest.raises(AttributeError):
            repro.does_not_exist

    def test_dir_lists_conveniences(self):
        import repro

        listing = dir(repro)
        assert "HisRES" in listing and "build_model" in listing
