"""Negative sampling and margin training for translational models."""

import numpy as np
import pytest

from repro.baselines import RotatE, DistMult
from repro.baselines.negative_sampling import corrupt_objects, margin_loss
from repro.core.window import WindowBuilder

E, R = 10, 3


def _window():
    b = WindowBuilder(E, R, history_length=2, use_global=False)
    queries = np.array([[0, 0, 1, 0], [2, 1, 3, 0]])
    return b.window_for(queries, prediction_time=0), queries


class TestCorruptObjects:
    def test_shape(self, rng):
        queries = np.array([[0, 0, 5, 0]] * 4)
        negatives = corrupt_objects(queries, E, 3, rng=rng)
        assert negatives.shape == (4, 3)

    def test_never_equals_true_object(self, rng):
        queries = np.array([[0, 0, 5, 0]] * 50)
        negatives = corrupt_objects(queries, E, 4, rng=rng)
        assert not (negatives == 5).any()

    def test_ids_in_range(self, rng):
        queries = np.array([[0, 0, 1, 0]] * 20)
        negatives = corrupt_objects(queries, E, 4, rng=rng)
        assert negatives.min() >= 0 and negatives.max() < E


class TestMarginLoss:
    def test_scalar_finite(self, rng):
        model = RotatE(E, R, dim=8)
        window, queries = _window()
        loss = margin_loss(model, window, queries, rng=rng)
        assert loss.size == 1
        assert np.isfinite(loss.item())
        assert loss.item() >= 0

    def test_gradients_flow(self, rng):
        model = DistMult(E, R, dim=8)
        window, queries = _window()
        margin_loss(model, window, queries, rng=rng).backward()
        assert any(p.grad is not None for p in model.parameters())

    def test_training_separates_positives(self, rng):
        """A few margin steps should score true objects above average."""
        from repro.nn import Adam

        model = DistMult(E, R, dim=8)
        opt = Adam(model.parameters(), lr=0.05)
        window, queries = _window()
        for _ in range(40):
            model.zero_grad()
            loss = margin_loss(model, window, queries, num_negatives=4, rng=rng)
            loss.backward()
            opt.step()
        scores = model.predict_entities(window, queries)
        for i, q in enumerate(queries):
            assert scores[i, q[2]] > scores[i].mean()
