"""Every baseline: construction, scoring shapes, loss, gradients, registry."""

import numpy as np
import pytest

from repro.baselines import (
    CEN,
    CENET,
    MODEL_REGISTRY,
    ComplEx,
    ConvE,
    ConvTransEModel,
    CyGNet,
    DistMult,
    LogCL,
    REGCN,
    RENet,
    RotatE,
    TiRGN,
    build_model,
)
from repro.core.window import WindowBuilder

E, R = 12, 4


def _window(track_vocabulary=True, use_global=True):
    b = WindowBuilder(E, R, history_length=2, use_global=use_global,
                      track_vocabulary=track_vocabulary)
    b.absorb(np.array([[0, 0, 1, 0], [2, 1, 3, 0]]))
    b.absorb(np.array([[1, 2, 4, 1], [0, 0, 2, 1]]))
    queries = np.array([[0, 0, 1, 2], [3, 1, 2, 2], [1, 4, 0, 2]])
    return b.window_for(queries, prediction_time=2), queries


ALL_KEYS = sorted(MODEL_REGISTRY)


class TestRegistry:
    def test_all_models_buildable(self):
        for key in ALL_KEYS:
            model = build_model(key, E, R, dim=8)
            assert model.num_parameters() > 0

    def test_unknown_key_raises(self):
        with pytest.raises(KeyError):
            build_model("nope", E, R)

    def test_registry_names_unique(self):
        names = [spec.name for spec in MODEL_REGISTRY.values()]
        assert len(names) == len(set(names))

    def test_static_flags(self):
        assert MODEL_REGISTRY["distmult"].is_static
        assert not MODEL_REGISTRY["regcn"].is_static

    def test_requirements_consistent(self):
        assert MODEL_REGISTRY["cygnet"].requirements.vocabulary
        assert MODEL_REGISTRY["logcl"].requirements.global_graph
        assert MODEL_REGISTRY["regcn"].requirements.recent_snapshots


class TestScoringContract:
    """Every model must produce (n, |E|) finite scores and a finite loss."""

    @pytest.mark.parametrize("key", ALL_KEYS)
    def test_scores_and_loss(self, key):
        model = build_model(key, E, R, dim=8)
        window, queries = _window()
        scores = model.predict_entities(window, queries)
        assert scores.shape == (3, E)
        assert np.all(np.isfinite(scores))
        loss = model.loss(window, queries)
        assert np.isfinite(loss.item())

    @pytest.mark.parametrize("key", ALL_KEYS)
    def test_loss_produces_gradients(self, key):
        model = build_model(key, E, R, dim=8)
        window, queries = _window()
        model.loss(window, queries).backward()
        grads = [p for p in model.parameters() if p.grad is not None]
        assert len(grads) > 0
        assert all(np.all(np.isfinite(p.grad)) for p in grads)

    @pytest.mark.parametrize("key", ALL_KEYS)
    def test_eval_deterministic(self, key):
        model = build_model(key, E, R, dim=8)
        window, queries = _window()
        a = model.predict_entities(window, queries)
        b = model.predict_entities(window, queries)
        np.testing.assert_allclose(a, b)


class TestStaticModels:
    def test_distmult_score_is_trilinear(self, rng):
        m = DistMult(E, R, dim=4)
        window, queries = _window()
        scores = m.predict_entities(window, queries)
        s = m.entity.weight.data[queries[0, 0]]
        r = m.relation.weight.data[queries[0, 1]]
        expected = (s * r) @ m.entity.weight.data.T
        np.testing.assert_allclose(scores[0], expected)

    def test_complex_conjugate_symmetry(self):
        """ComplEx scores are real-valued bilinear forms."""
        m = ComplEx(E, R, dim=4)
        window, queries = _window()
        scores = m.predict_entities(window, queries)
        assert np.all(np.isfinite(scores))

    def test_rotate_self_rotation_zero_distance(self):
        """With zero phase, the top candidate for s is s itself."""
        m = RotatE(E, R, dim=4)
        m.phase.data[...] = 0.0
        window, _ = _window()
        queries = np.array([[3, 0, 0, 2]])
        scores = m.predict_entities(window, queries)
        assert scores[0].argmax() == 3

    def test_conve_requires_divisible_dim(self):
        with pytest.raises(ValueError):
            ConvE(E, R, dim=10, reshape_height=4)

    def test_static_models_ignore_history(self):
        """Same scores regardless of window contents."""
        m = ConvTransEModel(E, R, dim=8)
        m.eval()
        w1, queries = _window()
        b = WindowBuilder(E, R, history_length=2, use_global=False)
        w2 = b.window_for(queries, prediction_time=0)  # empty history
        np.testing.assert_allclose(
            m.predict_entities(w1, queries), m.predict_entities(w2, queries)
        )


class TestVocabularyModels:
    def test_cygnet_copy_boosts_historical(self):
        m = CyGNet(E, R, dim=8, copy_weight=1.0)
        m.eval()
        window, queries = _window()
        scores = m.predict_entities(window, queries)
        mask = window.history_masks
        # with pure copy mode, any seen candidate outranks all unseen ones
        for i in range(len(queries)):
            seen = np.flatnonzero(mask[i])
            unseen = np.flatnonzero(mask[i] == 0)
            if len(seen) and len(unseen):
                assert scores[i, seen].min() > scores[i, unseen].max()

    def test_cygnet_requires_masks(self):
        m = CyGNet(E, R, dim=8)
        b = WindowBuilder(E, R, history_length=2, track_vocabulary=False)
        window = b.window_for(np.array([[0, 0, 1, 0]]), prediction_time=0)
        with pytest.raises(RuntimeError):
            m.predict_entities(window, np.array([[0, 0, 1, 0]]))

    def test_cygnet_invalid_copy_weight(self):
        with pytest.raises(ValueError):
            CyGNet(E, R, dim=8, copy_weight=1.5)

    def test_cenet_gate_blends_distributions(self):
        m = CENET(E, R, dim=8)
        window, queries = _window()
        scores = m.predict_entities(window, queries)
        # scores are log-probabilities: logsumexp == 0
        from scipy.special import logsumexp
        np.testing.assert_allclose(logsumexp(scores, axis=1), 0.0, atol=1e-6)

    def test_tirgn_mixture_is_log_probability(self):
        m = TiRGN(E, R, dim=8)
        m.eval()
        window, queries = _window()
        scores = m.predict_entities(window, queries)
        from scipy.special import logsumexp
        np.testing.assert_allclose(logsumexp(scores, axis=1), 0.0, atol=1e-6)

    def test_tirgn_invalid_global_weight(self):
        with pytest.raises(ValueError):
            TiRGN(E, R, dim=8, global_weight=2.0)


class TestTemporalModels:
    def test_renet_uses_history(self):
        """Scores change when history changes (unlike statics)."""
        m = RENet(E, R, dim=8)
        m.eval()
        w1, queries = _window()
        b = WindowBuilder(E, R, history_length=2, use_global=False, track_vocabulary=True)
        b.absorb(np.array([[5, 3, 6, 0]]))
        w2 = b.window_for(queries, prediction_time=1)
        assert not np.allclose(
            m.predict_entities(w1, queries), m.predict_entities(w2, queries)
        )

    def test_regcn_joint_loss_differs_from_entity_only(self):
        m = REGCN(E, R, dim=8, alpha=0.7)
        window, queries = _window()
        joint = m.loss(window, queries).item()
        m2 = REGCN(E, R, dim=8, alpha=1.0)
        m2.load_state_dict(m.state_dict())
        entity_only = m2.loss(window, queries).item()
        assert joint != pytest.approx(entity_only)

    def test_cen_length_ensemble(self):
        m = CEN(E, R, dim=8, lengths=(1, 2))
        window, queries = _window()
        scores = m.predict_entities(window, queries)
        assert scores.shape == (3, E)

    def test_cen_deduplicates_lengths(self):
        m = CEN(E, R, dim=8, lengths=(2, 2, 1))
        assert m.lengths == (1, 2)

    def test_logcl_contrastive_term_active_in_loss(self):
        m = LogCL(E, R, dim=8, contrastive_weight=0.5)
        window, queries = _window()
        with_cl = m.loss(window, queries).item()
        m.contrastive_weight = 0.0
        without_cl = m.loss(window, queries).item()
        assert with_cl != pytest.approx(without_cl)

    def test_logcl_empty_global_graph_ok(self):
        m = LogCL(E, R, dim=8)
        b = WindowBuilder(E, R, history_length=2, use_global=True)
        b.absorb(np.array([[0, 0, 1, 0]]))
        queries = np.array([[9, 3, 9, 1]])  # pair with no history
        window = b.window_for(queries, prediction_time=1)
        scores = m.predict_entities(window, queries)
        assert np.all(np.isfinite(scores))
