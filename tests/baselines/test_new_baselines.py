"""Mechanism-specific behaviour of the extended baselines
(xERTE, RETIA, RPC, HGLS). The generic scoring/loss/gradient contracts
are covered by the registry-parametrized tests in test_baselines.py."""

import numpy as np
import pytest

from repro.baselines import HGLS, RETIA, RPC, XERTE
from repro.core.window import WindowBuilder

E, R = 12, 4


def _window(use_global=False):
    b = WindowBuilder(E, R, history_length=3, use_global=use_global)
    b.absorb(np.array([[0, 0, 1, 0], [2, 1, 3, 0]]))
    b.absorb(np.array([[1, 2, 4, 1], [0, 0, 2, 1]]))
    b.absorb(np.array([[4, 3, 5, 2]]))
    queries = np.array([[0, 0, 1, 3], [1, 2, 4, 3]])
    return b.window_for(queries, prediction_time=3), queries


class TestXERTE:
    def test_evidence_walk_reaches_neighbors(self):
        model = XERTE(E, R, dim=8)
        window, queries = _window()
        evidence = model._walk_scores(window, queries)
        assert evidence.shape == (2, E)
        # query subject 0 has recent edges to 1 and 2: mass must arrive
        assert evidence[0, 1] > 0 or evidence[0, 2] > 0

    def test_no_history_no_evidence(self):
        model = XERTE(E, R, dim=8)
        b = WindowBuilder(E, R, history_length=2, use_global=False)
        queries = np.array([[0, 0, 1, 0]])
        window = b.window_for(queries, prediction_time=0)
        evidence = model._walk_scores(window, queries)
        assert evidence.sum() == 0.0

    def test_explain_returns_ranked_evidence(self):
        model = XERTE(E, R, dim=8)
        window, queries = _window()
        explanation = model.explain(window, queries[0], top_k=3)
        masses = [item["evidence_mass"] for item in explanation]
        assert masses == sorted(masses, reverse=True)
        assert all(m > 0 for m in masses)

    def test_isolated_subject_gets_no_walk_bonus(self):
        model = XERTE(E, R, dim=8)
        window, _ = _window()
        queries = np.array([[11, 0, 1, 3]])  # entity 11 has no history
        evidence = model._walk_scores(window, queries)
        assert evidence.sum() == 0.0


class TestRETIA:
    def test_line_graph_cache_reused(self):
        model = RETIA(E, R, dim=8)
        window, queries = _window()
        model.predict_entities(window, queries)
        cached = len(model._line_cache)
        model.predict_entities(window, queries)
        assert len(model._line_cache) == cached  # same graphs, no growth

    def test_relation_representations_evolve(self):
        model = RETIA(E, R, dim=8)
        model.eval()
        window, _ = _window()
        state = model.encode(window)
        assert not np.allclose(state.relation_matrix.data, model.relation.weight.data)


class TestRPC:
    def test_snapshot_weighting_is_distribution(self):
        from repro.nn import functional as F

        model = RPC(E, R, dim=8)
        weights = F.softmax(model.snapshot_weights[:3], axis=0)
        assert weights.data.sum() == pytest.approx(1.0)

    def test_empty_window_falls_back(self):
        model = RPC(E, R, dim=8)
        b = WindowBuilder(E, R, history_length=2, use_global=False)
        queries = np.array([[0, 0, 1, 0]])
        window = b.window_for(queries, prediction_time=0)
        scores = model.predict_entities(window, queries)
        assert np.all(np.isfinite(scores))


class TestHGLS:
    def test_memory_updates_on_observe(self):
        model = HGLS(E, R, dim=8)
        assert not model._memory_seen.any()
        model.observe(np.array([[0, 0, 1, 0]]))
        assert model._memory_seen[0] and model._memory_seen[1]
        assert not model._memory_seen[5]

    def test_memory_ema_blends(self):
        model = HGLS(E, R, dim=8, memory_decay=0.5)
        model.observe(np.array([[0, 0, 1, 0]]))
        first = model._memory[0].copy()
        model.observe(np.array([[0, 0, 2, 1]]))
        assert not np.allclose(model._memory[0], first)

    def test_encode_absorbs_window(self):
        model = HGLS(E, R, dim=8)
        window, queries = _window()
        model.predict_entities(window, queries)
        assert model._memory_seen.any()
