"""Example scripts: importability always; full runs behind an env flag.

Running every example end-to-end takes minutes of training; set
``REPRO_RUN_EXAMPLES=1`` to exercise them fully (CI nightly style).
The default suite still verifies each script parses and has a main().
"""

import ast
import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "examples")
EXAMPLES = sorted(f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py"))

RUN_FULL = os.environ.get("REPRO_RUN_EXAMPLES") == "1"


class TestExamplesStatic:
    def test_expected_examples_present(self):
        assert "quickstart.py" in EXAMPLES
        assert len(EXAMPLES) >= 4

    @pytest.mark.parametrize("name", EXAMPLES)
    def test_parses_and_has_main(self, name):
        path = os.path.join(EXAMPLES_DIR, name)
        tree = ast.parse(open(path).read(), filename=name)
        functions = {n.name for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)}
        assert "main" in functions, f"{name} must define main()"
        # every example must be runnable as a script
        has_guard = any(
            isinstance(node, ast.If)
            and isinstance(node.test, ast.Compare)
            and getattr(node.test.left, "id", "") == "__name__"
            for node in tree.body
        )
        assert has_guard, f"{name} missing __main__ guard"

    @pytest.mark.parametrize("name", EXAMPLES)
    def test_docstring_present(self, name):
        path = os.path.join(EXAMPLES_DIR, name)
        tree = ast.parse(open(path).read())
        assert ast.get_docstring(tree), f"{name} needs a module docstring"


@pytest.mark.skipif(not RUN_FULL, reason="set REPRO_RUN_EXAMPLES=1 to run examples end-to-end")
class TestExamplesRun:
    @pytest.mark.parametrize("name", EXAMPLES)
    def test_runs_clean(self, name):
        result = subprocess.run(
            [sys.executable, os.path.join(EXAMPLES_DIR, name)],
            capture_output=True,
            text=True,
            timeout=900,
        )
        assert result.returncode == 0, result.stderr[-2000:]
