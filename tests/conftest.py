"""Shared fixtures and gradient-checking helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.profiles import DatasetProfile
from repro.data.synthetic import SyntheticTKGGenerator
from repro.nn.tensor import Tensor
from repro.training.seeding import seed_everything


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture(autouse=True)
def _seed():
    seed_everything(12345)


@pytest.fixture(scope="session")
def tiny_dataset():
    """A small, fully deterministic TKG shared by integration tests."""
    profile = DatasetProfile(
        name="test_tiny",
        num_entities=25,
        num_relations=5,
        num_timestamps=24,
        facts_per_snapshot=10,
        time_granularity="1 step",
        seed=99,
    )
    return SyntheticTKGGenerator(profile).generate()


def numeric_gradient(fn, tensors, index, eps=1e-6):
    """Central-difference gradient of scalar fn wrt tensors[index]."""
    target = tensors[index]
    grad = np.zeros_like(target.data)
    for idx in np.ndindex(*(target.shape or (1,))):
        original = target.data[idx]
        target.data[idx] = original + eps
        plus = fn(*[Tensor(t.data) for t in tensors]).item()
        target.data[idx] = original - eps
        minus = fn(*[Tensor(t.data) for t in tensors]).item()
        target.data[idx] = original
        grad[idx] = (plus - minus) / (2 * eps)
    return grad


def check_gradients(fn, *arrays, tol=1e-4):
    """Assert autograd gradients match finite differences.

    ``fn`` maps Tensors to a Tensor; a sum-of-squares scalarisation is
    applied automatically for non-scalar outputs.
    """

    def scalar_fn(*tensors):
        out = fn(*tensors)
        return (out * out).sum() if out.size != 1 else out

    tensors = [Tensor(np.asarray(a, dtype=np.float64), requires_grad=True) for a in arrays]
    loss = scalar_fn(*tensors)
    loss.backward()
    # Central differences lose ~ulp(|loss|)/(2*eps) to cancellation, so a
    # fixed atol is below the noise floor once the loss gets large (e.g.
    # exp-heavy functions); widen atol to the round-off floor.
    eps = 1e-6
    noise_floor = 4.0 * np.spacing(abs(float(loss.item()))) / (2.0 * eps)
    atol = max(tol, noise_floor)
    for i, tensor in enumerate(tensors):
        expected = numeric_gradient(scalar_fn, tensors, i, eps=eps)
        assert tensor.grad is not None, f"input {i} got no gradient"
        np.testing.assert_allclose(
            tensor.grad, expected, atol=atol, rtol=tol, err_msg=f"gradient mismatch on input {i}"
        )
