"""Figure 5 generators at smoke scale (fast, shapes only)."""

import pytest

from repro.experiments.figure5 import (
    figure5a_granularity_sensitivity,
    figure5b_layer_sensitivity,
)


@pytest.fixture(autouse=True)
def _smoke(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_SCALE", "smoke")


class TestFigure5Generators:
    def test_granularity_series(self):
        rows = figure5a_granularity_sensitivity(levels=[1, 2], dataset_name="unit_tiny")
        assert [row["granularity"] for row in rows] == [1, 2]
        for row in rows:
            assert 0 <= row["mrr"] <= 100
            assert row["wall_time_s"] > 0

    def test_layer_series(self):
        rows = figure5b_layer_sensitivity(layers=[1, 2], dataset_name="unit_tiny")
        assert [row["num_layers"] for row in rows] == [1, 2]
        for row in rows:
            assert 0 <= row["mrr"] <= 100
