"""ASCII figure rendering."""

import pytest

from repro.experiments.ascii_plot import bar_chart, series_figure, sparkline


class TestSparkline:
    def test_length_matches(self):
        assert len(sparkline([1, 2, 3])) == 3

    def test_monotone_series_monotone_bars(self):
        line = sparkline([1, 2, 3, 4])
        assert list(line) == sorted(line)

    def test_constant_series(self):
        assert sparkline([5, 5, 5]) == "▄▄▄"

    def test_empty(self):
        assert sparkline([]) == ""


class TestBarChart:
    def test_labels_and_values_rendered(self):
        chart = bar_chart(["a", "bb"], [1.0, 2.0])
        assert "a " in chart and "bb" in chart
        assert "2.00" in chart

    def test_max_bar_is_full_width(self):
        chart = bar_chart(["x"], [3.0], width=10)
        assert "█" * 10 in chart

    def test_no_data(self):
        assert bar_chart([], []) == "(no data)"


class TestSeriesFigure:
    def test_combines_sparkline_and_bars(self):
        rows = [{"granularity": 1, "mrr": 30.0}, {"granularity": 2, "mrr": 40.0}]
        figure = series_figure("t", rows, "granularity")
        assert "t" in figure and "40.00" in figure
