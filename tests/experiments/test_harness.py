"""Experiment harness: scales, runner, and table generators (smoke scale)."""

import numpy as np
import pytest

from repro.data import generate_dataset
from repro.experiments.runner import (
    SCALES,
    BenchScale,
    RunConfig,
    epochs_for,
    format_rows,
    get_scale,
    run_model_on_dataset,
)
from repro.experiments.table2 import check_table2_shape, table2_dataset_statistics
from repro.experiments.table3 import PAPER_TABLE3, TABLE3_MODELS, check_table3_shape
from repro.experiments.table4 import ABLATION_VARIANTS, PAPER_TABLE4, run_variant


class TestScales:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "smoke")
        assert get_scale().name == "smoke"

    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert get_scale().name == "default"

    def test_unknown_scale_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "galactic")
        with pytest.raises(KeyError):
            get_scale()

    def test_epochs_for_model_classes(self):
        scale = SCALES["default"]
        assert epochs_for("hisres", scale) == scale.hisres_epochs
        assert epochs_for("distmult", scale) == scale.static_epochs
        assert epochs_for("cygnet", scale) == scale.vocab_epochs
        assert epochs_for("regcn", scale) == scale.gnn_epochs
        # tirgn has vocabulary AND recent snapshots -> GNN budget
        assert epochs_for("tirgn", scale) == scale.gnn_epochs


class TestRunner:
    def test_run_model_row_schema(self, tiny_dataset):
        config = RunConfig(dim=8, epochs=1, patience=1, max_timestamps=4)
        row = run_model_on_dataset("distmult", tiny_dataset, config)
        for key in ("model", "dataset", "mrr", "hits@1", "hits@3", "hits@10", "wall_time_s"):
            assert key in row
        assert 0 <= row["mrr"] <= 100

    def test_format_rows(self):
        rows = [{"model": "X", "mrr": 12.345, "hits@1": 1.0, "hits@3": 2.0, "hits@10": 3.0}]
        text = format_rows(rows)
        assert "12.35" in text and "X" in text


class TestTable2:
    def test_statistics_rows(self):
        rows = table2_dataset_statistics(["unit_tiny"])
        assert rows[0]["dataset"] == "unit_tiny"
        assert 0 <= rows[0]["repetition_ratio"] <= 1

    def test_shape_checker_passes_on_real_profiles(self):
        rows = table2_dataset_statistics()
        assert check_table2_shape(rows) == []

    def test_shape_checker_flags_violations(self):
        rows = table2_dataset_statistics()
        for row in rows:
            if row["dataset"] == "gdelt_small":
                row["time_granularity"] = "1 day"
        assert check_table2_shape(rows)


class TestTable3Machinery:
    def test_paper_table_covers_all_models(self):
        for dataset, scores in PAPER_TABLE3.items():
            missing = [m for m in
                       ("DistMult", "CyGNet", "RE-GCN", "TiRGN", "LogCL", "HisRES")
                       if m not in scores]
            assert not missing, (dataset, missing)

    def test_shape_checker_detects_static_win(self):
        rows = [
            {"dataset": "d", "model": "ConvE", "mrr": 50.0},
            {"dataset": "d", "model": "HisRES", "mrr": 40.0},
        ]
        problems = check_table3_shape(rows)
        assert problems  # static beats temporal AND hisres not best

    def test_shape_checker_ok_case(self):
        rows = [
            {"dataset": "d", "model": "ConvE", "mrr": 30.0},
            {"dataset": "d", "model": "RE-GCN", "mrr": 40.0},
            {"dataset": "d", "model": "HisRES", "mrr": 50.0},
        ]
        assert check_table3_shape(rows) == []


class TestTable4Machinery:
    def test_variant_registry_matches_paper(self):
        assert set(ABLATION_VARIANTS) == set(PAPER_TABLE4["icews14s_small"])

    def test_run_variant_smoke(self, tiny_dataset):
        row = run_variant("HisRES-w/o-MG", tiny_dataset, dim=8, epochs=1,
                          patience=1, max_timestamps=4)
        assert row["model"] == "HisRES-w/o-MG"
        assert np.isfinite(row["mrr"])
