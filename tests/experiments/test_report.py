"""Benchmark report parser."""

import pytest

from repro.experiments.report import (
    find_table,
    markdown_table,
    parse_report,
    summarize_table3,
    summarize_table4,
)

SAMPLE = """
=== Table 3 (icews14s_small) ===
       model |          mrr |       hits@1
-------------------------------------------
    DistMult |        15.44 |        10.91
      HisRES |        50.48 |        39.57
SHAPE DEVIATIONS: []

=== Table 4 ablations (icews18_small) ===
       model |          mrr |       hits@1
-------------------------------------------
      HisRES |        37.69 |        26.46
HisRES-w/o-G |        29.16 |        18.45
"""


@pytest.fixture
def report_path(tmp_path):
    path = tmp_path / "report.txt"
    path.write_text(SAMPLE)
    return str(path)


class TestParseReport:
    def test_finds_both_tables(self, report_path):
        tables = parse_report(report_path)
        assert len(tables) == 2

    def test_rows_parsed_with_headers(self, report_path):
        tables = parse_report(report_path)
        rows = tables[0]["rows"]
        assert rows[0]["model"] == "DistMult"
        assert rows[0]["mrr"] == "15.44"

    def test_non_table_lines_ignored(self, report_path):
        tables = parse_report(report_path)
        for table in tables:
            for row in table["rows"]:
                assert "SHAPE" not in str(row.values())

    def test_find_table(self, report_path):
        tables = parse_report(report_path)
        assert find_table(tables, "Table 4") is not None
        assert find_table(tables, "nonexistent") is None


class TestSummaries:
    def test_table3_summary(self, report_path):
        summary = summarize_table3(parse_report(report_path))
        assert summary["icews14s_small"]["HisRES"] == pytest.approx(50.48)

    def test_table4_summary(self, report_path):
        summary = summarize_table4(parse_report(report_path))
        assert summary["icews18_small"]["HisRES-w/o-G"] == pytest.approx(29.16)

    def test_markdown_rendering(self):
        text = markdown_table(
            [{"model": "X", "mrr": 1.0}], columns=["model", "mrr"]
        )
        assert text.splitlines()[0] == "| model | mrr |"
        assert "| X | 1.0 |" in text
