"""Runner behaviour details: history overrides, scale budgets."""

import numpy as np
import pytest

from repro.data import generate_dataset
from repro.experiments.runner import RunConfig, run_model_on_dataset


class TestHistoryOverride:
    def test_hisres_gets_longer_window(self, tiny_dataset, monkeypatch):
        """HisRES runs with history >= 4 even when the shared config
        says 2 (the inter-snapshot merge needs material)."""
        captured = {}

        from repro.training import Trainer as RealTrainer

        class SpyTrainer(RealTrainer):
            def __init__(self, model, dataset, **kwargs):
                captured["history_length"] = kwargs.get("history_length")
                super().__init__(model, dataset, **kwargs)

        monkeypatch.setattr("repro.experiments.runner.Trainer", SpyTrainer)
        config = RunConfig(dim=8, history_length=2, epochs=1, patience=1, max_timestamps=3)
        run_model_on_dataset("hisres", tiny_dataset, config)
        assert captured["history_length"] == 4

    def test_other_models_keep_config_window(self, tiny_dataset, monkeypatch):
        captured = {}
        from repro.training import Trainer as RealTrainer

        class SpyTrainer(RealTrainer):
            def __init__(self, model, dataset, **kwargs):
                captured["history_length"] = kwargs.get("history_length")
                super().__init__(model, dataset, **kwargs)

        monkeypatch.setattr("repro.experiments.runner.Trainer", SpyTrainer)
        config = RunConfig(dim=8, history_length=2, epochs=1, patience=1, max_timestamps=3)
        run_model_on_dataset("regcn", tiny_dataset, config)
        assert captured["history_length"] == 2


class TestRowContents:
    def test_paper_reference_attached_when_known(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "smoke")
        from repro.experiments.table3 import table3_main_results

        rows = table3_main_results(datasets=["icews14s_small"], models=["distmult"])
        assert rows[0]["paper_mrr"] == pytest.approx(15.44)

    def test_metrics_scaled_to_percent(self, tiny_dataset):
        config = RunConfig(dim=8, epochs=1, patience=1, max_timestamps=3)
        row = run_model_on_dataset("distmult", tiny_dataset, config)
        assert 0 <= row["mrr"] <= 100
        assert 0 <= row["hits@10"] <= 100
        assert row["hits@1"] <= row["hits@10"]
