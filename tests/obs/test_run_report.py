"""Tests for ``repro.obs.report``: ledger trajectory rendering."""

import pytest

from repro.obs.report import (
    group_records,
    metric_series,
    render_html,
    render_markdown,
    render_terminal,
)
from repro.obs.runs import RunLedger, write_bench_report


@pytest.fixture()
def populated_ledger(tmp_path):
    """Two train runs plus one bench run — the acceptance scenario."""
    ledger = RunLedger(str(tmp_path / "ledger.jsonl"))
    for seed, mrr in ((1, 38.0), (2, 41.5)):
        ledger.append(
            kind="train",
            model="hisres",
            dataset="icews14s_small",
            seed=seed,
            metrics={"mrr": mrr, "hits@10": mrr + 20.0, "loss": 5.0 - seed},
        )
    write_bench_report(
        "encoder_throughput",
        {"walk_steps_per_second": 120.0},
        ledger=ledger,
        dataset="icews14s_small",
    )
    return ledger


def test_group_records_keys():
    records = [
        {"kind": "train", "model": "hisres", "dataset": "d1"},
        {"kind": "train", "model": "hisres", "dataset": "d1"},
        {"kind": "bench", "bench": {"name": "enc"}, "dataset": "d1"},
        {"kind": "eval"},
    ]
    groups = group_records(records)
    assert set(groups) == {
        ("train", "hisres", "d1"),
        ("bench", "enc", "d1"),
        ("eval", "-", "-"),
    }
    assert len(groups[("train", "hisres", "d1")]) == 2


def test_metric_series_aligns_runs():
    records = [
        {"kind": "train", "metrics": {"mrr": 0.4}},
        {"kind": "train", "metrics": {"mrr": 0.5, "loss": 1.0}},
    ]
    series = metric_series(records)
    assert series["mrr"] == [0.4, 0.5]
    assert series["loss"] == [None, 1.0]


def test_render_terminal_shows_trajectory(populated_ledger):
    text = render_terminal(populated_ledger)
    assert "3 records" in text
    assert "train · hisres · icews14s_small" in text
    assert "bench · encoder_throughput · icews14s_small" in text
    assert "mrr" in text
    assert "walk_steps_per_second" in text
    assert "last=41.5" in text
    assert "n=2" in text


def test_render_terminal_filters(populated_ledger):
    text = render_terminal(populated_ledger, kind="train")
    assert "train · hisres" in text
    assert "encoder_throughput" not in text


def test_render_terminal_empty(tmp_path):
    ledger = RunLedger(str(tmp_path / "none.jsonl"))
    assert render_terminal(ledger).startswith("no runs in ")


def test_render_markdown_pipe_tables(populated_ledger):
    md = render_markdown(populated_ledger)
    assert md.startswith("# Run ledger report")
    assert "| metric | trend | last |" in md
    assert "## train · hisres · icews14s_small (2 runs)" in md
    assert "| mrr |" in md


def test_render_html_is_escaped_and_static(populated_ledger):
    populated_ledger.append(
        kind="train", model="<script>alert(1)</script>", metrics={"mrr": 0.1}
    )
    html = render_html(populated_ledger)
    assert html.startswith("<!doctype html>")
    assert "<script>" not in html
    assert "&lt;script&gt;" in html
    assert "encoder_throughput" in html


def test_last_limits_table_rows(tmp_path):
    ledger = RunLedger(str(tmp_path / "ledger.jsonl"))
    for i in range(10):
        ledger.append(kind="train", model="m", dataset="d",
                      run_id=f"run-{i:03d}", metrics={"mrr": float(i)})
    text = render_terminal(ledger, last=3)
    assert "009" in text and "007" in text
    assert "001" not in text
    # sparkline still covers the full series
    assert "n=10" in text
