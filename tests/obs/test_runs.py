"""Tests for ``repro.obs.runs``: the append-only run ledger."""

import json
import os

import pytest

from repro.obs.runs import (
    SCHEMA_VERSION,
    RunLedger,
    build_record,
    config_fingerprint,
    default_ledger_path,
    flatten_metrics,
    git_sha,
    new_run_id,
    write_bench_report,
)


@pytest.fixture()
def ledger(tmp_path):
    return RunLedger(str(tmp_path / "ledger.jsonl"))


def test_build_record_envelope():
    record = build_record(
        "train",
        model="hisres",
        dataset="icews14s_small",
        seed=7,
        config={"dim": 16, "lr": 0.01},
        metrics={"mrr": 0.41, "best_epoch": 3},
        extra={"checkpoint": "ckpt.npz", "dropped": None},
    )
    assert record["schema_version"] == SCHEMA_VERSION
    assert record["kind"] == "train"
    assert record["model"] == "hisres"
    assert record["dataset"] == "icews14s_small"
    assert record["seed"] == 7
    assert record["metrics"]["mrr"] == pytest.approx(0.41)
    assert record["config_fingerprint"] == config_fingerprint({"dim": 16, "lr": 0.01})
    assert "dropped" not in record["extra"]
    assert record["run_id"]
    assert record["timestamp"]
    assert "dtype" in record


def test_config_fingerprint_is_order_invariant():
    a = config_fingerprint({"dim": 16, "lr": 0.01})
    b = config_fingerprint({"lr": 0.01, "dim": 16})
    c = config_fingerprint({"lr": 0.02, "dim": 16})
    assert a == b
    assert a != c
    assert len(a) == 12
    assert config_fingerprint(None) is None
    assert config_fingerprint({}) is None


def test_new_run_id_is_unique_and_sortable():
    ids = {new_run_id() for _ in range(50)}
    assert len(ids) == 50
    assert all("-" in rid for rid in ids)


def test_git_sha_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_GIT_SHA", "deadbee")
    assert git_sha() == "deadbee"


def test_append_and_read_round_trip(ledger):
    ledger.append(kind="train", model="hisres", dataset="d1", metrics={"mrr": 0.4})
    ledger.append(kind="eval", model="hisres", dataset="d1", metrics={"mrr": 0.39})
    ledger.append(kind="train", model="cygnet", dataset="d2", metrics={"mrr": 0.2})

    assert len(ledger) == 3
    trains = ledger.records(kind="train")
    assert [r["model"] for r in trains] == ["hisres", "cygnet"]
    assert ledger.records(model="hisres", dataset="d1")[0]["kind"] == "train"
    assert ledger.counts_by_kind() == {"train": 2, "eval": 1}
    assert [r["kind"] for r in ledger.last(2)] == ["eval", "train"]


def test_read_skips_corrupt_lines(ledger):
    ledger.append(kind="train", metrics={"mrr": 0.4})
    with open(ledger.path, "a", encoding="utf-8") as handle:
        handle.write("{not json\n")
        handle.write('"a bare string"\n')
        handle.write("\n")
    ledger.append(kind="train", metrics={"mrr": 0.5})

    records = ledger.records()
    assert len(records) == 2
    assert ledger.skipped_lines == 2


def test_append_rejects_record_plus_fields(ledger):
    with pytest.raises(TypeError):
        ledger.append({"kind": "train"}, model="hisres")


def test_flatten_metrics_merges_metrics_and_bench():
    record = build_record(
        "bench",
        metrics={"mrr": 0.4},
        bench={
            "name": "encoder",
            "measurements": {
                "walk_steps_per_second": 120.0,
                "nested": {"p50_ms": 1.5, "label": "skipme"},
                "flag": True,
            },
        },
    )
    flat = flatten_metrics(record)
    assert flat["mrr"] == pytest.approx(0.4)
    assert flat["walk_steps_per_second"] == pytest.approx(120.0)
    assert flat["nested.p50_ms"] == pytest.approx(1.5)
    assert "nested.label" not in flat
    assert "flag" not in flat


def test_default_ledger_path_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_RUN_LEDGER", "/tmp/custom.jsonl")
    assert default_ledger_path() == "/tmp/custom.jsonl"
    monkeypatch.delenv("REPRO_RUN_LEDGER")
    assert default_ledger_path() == os.path.join("runs", "ledger.jsonl")


def test_write_bench_report_writes_artifact_and_ledger(tmp_path):
    ledger = RunLedger(str(tmp_path / "ledger.jsonl"))
    artifact = tmp_path / "BENCH_demo.json"
    record = write_bench_report(
        "demo_bench",
        {"steps_per_second": 42.0},
        path=str(artifact),
        ledger=ledger,
        dataset="icews14s_small",
        seed=7,
        config={"scale": "smoke"},
    )
    assert record["kind"] == "bench"
    assert record["bench"]["name"] == "demo_bench"

    on_disk = json.loads(artifact.read_text())
    assert on_disk["schema_version"] == SCHEMA_VERSION
    assert on_disk["bench"]["measurements"]["steps_per_second"] == 42.0
    assert on_disk["git_sha"] == record["git_sha"]
    assert on_disk["seed"] == 7

    rows = ledger.records(kind="bench")
    assert len(rows) == 1
    assert rows[0]["run_id"] == record["run_id"]


def test_write_bench_report_ledger_false_skips_ledger(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RUN_LEDGER", str(tmp_path / "default.jsonl"))
    write_bench_report("quiet", {"x": 1.0}, ledger=False)
    assert not (tmp_path / "default.jsonl").exists()
