"""Metrics registry: counters, gauges, histograms, rendering, threads."""

import re
import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

# Prometheus text exposition: comment or `name{labels} value` lines.
_LABEL = r'[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
_SAMPLE_RE = re.compile(
    rf"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{{{_LABEL}(,{_LABEL})*\}})? -?[0-9eE+.]+(\+Inf)?$"
)


class TestCounter:
    def test_inc_and_value(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_inc_rejected(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_inc_to_is_monotone(self):
        c = Counter()
        c.inc_to(10)
        c.inc_to(4)  # never goes down
        assert c.value == 10

    def test_thread_safety_exact_total(self):
        c = Counter()
        threads = [
            threading.Thread(target=lambda: [c.inc() for _ in range(2000)])
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8 * 2000


class TestHistogram:
    def test_bucket_counts_are_le_semantics(self):
        h = Histogram(buckets=(0.1, 1.0))
        for v in (0.05, 0.1, 0.5, 2.0):
            h.observe(v)
        # cumulative: <=0.1 -> 2, <=1.0 -> 3, +Inf -> 4
        assert h.cumulative_counts() == [2, 3, 4]
        assert h.count == 4
        assert h.sum == pytest.approx(2.65)

    def test_percentile_over_recent_ring(self):
        h = Histogram(window=4)
        for v in (100.0, 1.0, 2.0, 3.0, 4.0):  # 100 falls out of the ring
            h.observe(v)
        assert h.samples() == [1.0, 2.0, 3.0, 4.0]
        assert h.percentile(50) == 2.0
        assert h.percentile(100) == 4.0

    def test_merge_requires_same_buckets_and_folds(self):
        a, b = Histogram(buckets=(1.0,)), Histogram(buckets=(1.0,))
        a.observe(0.5)
        b.observe(2.0)
        a.merge(b)
        assert a.count == 2
        assert a.cumulative_counts() == [1, 2]
        with pytest.raises(ValueError):
            a.merge(Histogram(buckets=(5.0,)))

    def test_concurrent_observe_keeps_totals(self):
        h = Histogram()
        threads = [
            threading.Thread(target=lambda: [h.observe(0.01) for _ in range(1000)])
            for _ in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert h.count == 4000
        assert h.cumulative_counts()[-1] == 4000


class TestRegistry:
    def test_idempotent_registration_returns_same_family(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", "help")
        b = reg.counter("x_total")
        assert a is b

    def test_type_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x_total")

    def test_label_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x_total", labelnames=("a",))
        with pytest.raises(ValueError, match="labels"):
            reg.counter("x_total", labelnames=("b",))

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("bad-name")
        with pytest.raises(ValueError):
            reg.counter("ok_total", labelnames=("bad-label",))

    def test_labeled_family_children(self):
        reg = MetricsRegistry()
        fam = reg.counter("hits_total", labelnames=("route",))
        fam.labels(route="/a").inc()
        fam.labels("/a").inc()
        fam.labels(route="/b").inc(5)
        assert fam.labels(route="/a").value == 2
        assert fam.labels(route="/b").value == 5
        with pytest.raises(ValueError):
            fam.labels()  # missing label value

    def test_unlabeled_family_proxies_child(self):
        reg = MetricsRegistry()
        g = reg.gauge("temp")
        g.set(3.5)
        assert g.value == 3.5

    def test_labeled_family_refuses_proxy(self):
        reg = MetricsRegistry()
        fam = reg.counter("hits_total", labelnames=("route",))
        with pytest.raises(AttributeError):
            fam.inc()

    def test_collector_runs_at_render_and_snapshot(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("bridged")
        state = {"v": 0}
        handle = reg.register_collector(lambda: gauge.set(state["v"]))
        state["v"] = 7
        assert "bridged 7" in reg.render_prometheus()
        state["v"] = 9
        assert reg.snapshot()["bridged"]["value"] == 9
        reg.unregister_collector(handle)
        state["v"] = 11
        assert "bridged 9" in reg.render_prometheus()

    def test_broken_collector_does_not_break_scrape(self):
        reg = MetricsRegistry()
        reg.counter("ok_total").inc()
        reg.register_collector(lambda: 1 / 0)
        assert "ok_total 1" in reg.render_prometheus()

    def test_reset_zeroes_but_keeps_families(self):
        reg = MetricsRegistry()
        c = reg.counter("x_total")
        c.inc(3)
        reg.reset()
        assert reg.get("x_total") is not None
        assert c.value == 0


class TestPrometheusRendering:
    def _registry(self):
        reg = MetricsRegistry()
        reg.counter("req_total", "Requests.", labelnames=("route",)).labels(
            route='GET /a"b'
        ).inc(3)
        reg.gauge("temp", "Temp.").set(-1.5)
        hist = reg.histogram("lat_seconds", "Latency.", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        return reg

    def test_every_line_is_valid_exposition(self):
        for line in self._registry().render_prometheus().strip().splitlines():
            if line.startswith("#"):
                assert re.match(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*", line)
            else:
                assert _SAMPLE_RE.match(line), f"bad exposition line: {line!r}"

    def test_histogram_has_cumulative_buckets_sum_count(self):
        text = self._registry().render_prometheus()
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="1"} 2' in text
        assert 'lat_seconds_bucket{le="+Inf"} 2' in text
        assert "lat_seconds_sum 0.55" in text
        assert "lat_seconds_count 2" in text

    def test_label_values_are_escaped(self):
        text = self._registry().render_prometheus()
        assert 'req_total{route="GET /a\\"b"} 3' in text

    def test_type_lines_present(self):
        text = self._registry().render_prometheus()
        assert "# TYPE req_total counter" in text
        assert "# TYPE temp gauge" in text
        assert "# TYPE lat_seconds histogram" in text

    def test_default_buckets_cover_latency_range(self):
        assert DEFAULT_BUCKETS[0] <= 0.001 and DEFAULT_BUCKETS[-1] >= 10.0


class TestParsePrometheusText:
    def _render_parse(self):
        from repro.obs.metrics import parse_prometheus_text

        registry = MetricsRegistry()
        registry.counter("req_total", "requests", labelnames=("route",)).labels(
            route='GET /a"b'
        ).inc(3)
        registry.gauge("temp", "temperature").set(-1.5)
        registry.histogram("lat_seconds", "latency").observe(0.05)
        return parse_prometheus_text(registry.render_prometheus())

    def test_round_trips_own_rendering(self):
        samples = self._render_parse()
        by_name = {(s.name, tuple(sorted(s.labels.items()))): s for s in samples}
        counter = by_name[("req_total", (("route", 'GET /a"b'),))]
        assert counter.type == "counter" and counter.value == 3.0
        gauge = by_name[("temp", ())]
        assert gauge.type == "gauge" and gauge.value == -1.5

    def test_histogram_suffixes_resolve_to_family_type(self):
        samples = self._render_parse()
        hist = [s for s in samples if s.name.startswith("lat_seconds")]
        assert hist and all(s.type == "histogram" for s in hist)
        infinity = [s for s in hist if s.labels.get("le") == "+Inf"]
        assert infinity and infinity[0].value == 1.0

    def test_malformed_lines_are_skipped(self):
        from repro.obs.metrics import parse_prometheus_text

        text = "\n".join([
            "# HELP ok fine",
            "# TYPE ok counter",
            "ok 1",
            "not a metric line !!!",
            'dangling{unclosed="x 3',
        ])
        samples = parse_prometheus_text(text)
        assert [(s.name, s.value, s.type) for s in samples] == [("ok", 1.0, "counter")]
