"""Span tracer: nesting, export formats, global enable/disable."""

import json

import pytest

from repro.obs.trace import (
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    span,
    tracing_enabled,
)


@pytest.fixture(autouse=True)
def _tracing_off():
    yield
    disable_tracing()


class TestTracer:
    def test_nesting_and_parenthood(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent is outer
        assert outer.parent is None
        # child temporally contained in parent
        assert outer.start <= inner.start
        assert inner.end <= outer.end

    def test_spans_sorted_by_start(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert [s.name for s in tracer.spans()] == ["a", "b"]

    def test_chrome_trace_structure(self):
        tracer = Tracer()
        with tracer.span("outer", epoch=3):
            with tracer.span("inner"):
                pass
        payload = json.loads(json.dumps(tracer.to_chrome_trace()))
        # metadata (ph="M" process_name) events precede the span events
        events = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert [e["name"] for e in events] == ["outer", "inner"]
        for e in events:
            assert e["dur"] >= 0
        outer, inner = events
        assert outer["args"]["epoch"] == 3
        assert outer["args"]["trace_id"] == inner["args"]["trace_id"]
        assert inner["args"]["parent_span_id"] == outer["args"]["span_id"]
        # inner event fully inside outer on the µs timeline
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1e-3

    def test_write_chrome_trace_roundtrip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        path = tracer.write_chrome_trace(str(tmp_path / "trace.json"))
        assert json.load(open(path))["displayTimeUnit"] == "ms"

    def test_exception_is_recorded_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("kaput")
        (record,) = tracer.spans()
        assert "kaput" in record.attrs["error"]

    def test_max_spans_bounds_memory(self):
        tracer = Tracer(max_spans=2)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert len(tracer) == 2
        assert tracer.dropped == 3
        assert tracer.to_chrome_trace()["otherData"]["dropped_spans"] == 3

    def test_format_tree_shows_hierarchy(self):
        tracer = Tracer()
        with tracer.span("epoch", epoch=1):
            with tracer.span("step"):
                pass
        tree = tracer.format_tree()
        assert "epoch" in tree and "step" in tree and "epoch=1" in tree
        assert tree.index("epoch") < tree.index("step")


class TestGlobalSwitch:
    def test_disabled_span_is_shared_noop(self):
        assert not tracing_enabled()
        a, b = span("x"), span("y")
        assert a is b  # no allocation on the disabled fast path
        with a:
            pass
        assert len(get_tracer()) == 0 or True  # no crash; nothing recorded below

    def test_enable_records_disable_stops(self):
        tracer = enable_tracing(reset=True)
        with span("live"):
            pass
        assert [s.name for s in tracer.spans()] == ["live"]
        disable_tracing()
        with span("dead"):
            pass
        assert [s.name for s in tracer.spans()] == ["live"]
