"""Tests for ``repro.obs.logging``: idempotent configuration and structured events."""

import io
import logging

import pytest

from repro.obs.logging import LOG_FORMAT, configure_logging, log_event


@pytest.fixture()
def clean_repro_logger():
    """Detach any handler configure_logging installed, restoring prior state."""
    logger = logging.getLogger("repro")
    saved_handlers = list(logger.handlers)
    saved_level = logger.level
    yield logger
    logger.handlers[:] = saved_handlers
    logger.setLevel(saved_level)


def test_configure_logging_is_idempotent(clean_repro_logger):
    before = len(clean_repro_logger.handlers)
    configure_logging("INFO")
    after_first = len(clean_repro_logger.handlers)
    configure_logging("INFO")
    configure_logging("DEBUG")
    assert len(clean_repro_logger.handlers) == after_first
    assert after_first == before + 1


def test_configure_logging_retunes_level(clean_repro_logger):
    logger = configure_logging("WARNING")
    assert logger.level == logging.WARNING
    logger = configure_logging("DEBUG")
    assert logger.level == logging.DEBUG


def test_configure_logging_writes_to_stream(clean_repro_logger):
    stream = io.StringIO()
    logger = configure_logging("INFO", stream=stream)
    log_event(logger, "unit.test", value=1)
    assert "unit.test value=1" in stream.getvalue()


def test_log_event_attaches_structured_fields(caplog):
    logger = logging.getLogger("repro.tests.structured")
    with caplog.at_level(logging.INFO, logger="repro.tests.structured"):
        log_event(logger, "train.epoch", epoch=3, loss=0.25, skipped=None)
    assert len(caplog.records) == 1
    record = caplog.records[0]
    assert record.event == "train.epoch"
    assert record.fields == {"epoch": 3, "loss": 0.25}
    assert "skipped" not in record.getMessage()
    assert record.getMessage().startswith("train.epoch ")
    assert "epoch=3" in record.getMessage()
    assert "loss=0.25" in record.getMessage()


def test_log_event_respects_level_gating(caplog):
    logger = logging.getLogger("repro.tests.gated")
    with caplog.at_level(logging.WARNING, logger="repro.tests.gated"):
        log_event(logger, "quiet.event", _level=logging.DEBUG, x=1)
    assert caplog.records == []


def test_log_event_formats_floats_compactly(caplog):
    logger = logging.getLogger("repro.tests.floats")
    with caplog.at_level(logging.INFO, logger="repro.tests.floats"):
        log_event(logger, "fmt", ratio=0.3333333333333)
    assert "ratio=0.333333" in caplog.records[0].getMessage()


def test_log_format_has_standard_fields():
    for token in ("%(asctime)s", "%(levelname)s", "%(name)s", "%(message)s"):
        assert token in LOG_FORMAT
