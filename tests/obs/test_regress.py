"""Tests for ``repro.obs.regress``: noise-aware baseline comparison."""

import pytest

from repro.obs.regress import (
    LOWER_BETTER_POLICY,
    QUALITY_POLICY,
    THROUGHPUT_POLICY,
    MetricPolicy,
    check_latest,
    compare_to_baseline,
    main,
    policy_for,
)
from repro.obs.runs import RunLedger


def _train_row(ledger, mrr, loss=0.5, qps=100.0):
    ledger.append(
        kind="train",
        model="hisres",
        dataset="icews14s_small",
        metrics={"mrr": mrr, "loss": loss, "steps_per_second": qps},
    )


def test_policy_for_uses_name_hints():
    assert policy_for("mrr") is QUALITY_POLICY
    assert policy_for("hits@10") is QUALITY_POLICY
    assert policy_for("loss") is LOWER_BETTER_POLICY
    assert policy_for("predict_p95_ms") is LOWER_BETTER_POLICY
    assert policy_for("walk_steps_per_second") is THROUGHPUT_POLICY
    # sampled-vs-full encoder rows: bare sampler metrics are throughput
    # (higher is better), but time-suffixed ones stay lower-is-better
    assert policy_for("sampler_win_x") is THROUGHPUT_POLICY
    assert policy_for("sampler_speedup") is THROUGHPUT_POLICY
    assert policy_for("sampler_encode_seconds") is LOWER_BETTER_POLICY
    # federated cluster families: counts are throughput-style, but any
    # latency/seconds cluster series must stay lower-is-better
    assert policy_for("repro_cluster_requests_total") is THROUGHPUT_POLICY
    assert policy_for("repro_cluster_scrapes_total") is THROUGHPUT_POLICY
    assert policy_for("repro_cluster_scatter_seconds") is LOWER_BETTER_POLICY
    assert policy_for("cluster_request_latency_p99") is LOWER_BETTER_POLICY
    assert policy_for("request_latency_mean") is LOWER_BETTER_POLICY
    override = MetricPolicy(higher_is_better=False, rel_tol=0.01)
    assert policy_for("mrr", {"mrr": override}) is override


def test_quality_drop_regresses():
    history = [{"mrr": 40.0}, {"mrr": 41.0}, {"mrr": 40.5}]
    report = compare_to_baseline({"mrr": 32.0}, history)  # 20% drop
    assert not report.ok
    assert report.regressions[0].metric == "mrr"
    assert "regressed" in report.format_table()


def test_equal_median_rerun_passes():
    history = [{"mrr": 40.0}, {"mrr": 41.0}, {"mrr": 40.5}]
    report = compare_to_baseline({"mrr": 40.5}, history)
    assert report.ok
    assert report.verdicts[0].status == "ok"


def test_lower_better_direction_for_loss():
    history = [{"loss": 0.50}, {"loss": 0.52}, {"loss": 0.48}]
    worse = compare_to_baseline({"loss": 1.2}, history)
    assert not worse.ok
    better = compare_to_baseline({"loss": 0.30}, history)
    assert better.ok
    assert better.verdicts[0].status == "improved"


def test_throughput_gets_loose_band():
    history = [{"steps_per_second": 100.0}] * 4
    # 20% slower stays within the 30% throughput band
    assert compare_to_baseline({"steps_per_second": 80.0}, history).ok
    # but a halving regresses
    assert not compare_to_baseline({"steps_per_second": 50.0}, history).ok


def test_mad_widens_tolerance_for_noisy_metrics():
    noisy = [{"mrr": v} for v in (30.0, 50.0, 35.0, 48.0, 32.0)]
    stable = [{"mrr": v} for v in (40.0, 40.1, 39.9, 40.0, 40.05)]
    current = {"mrr": 33.0}
    assert compare_to_baseline(current, noisy).ok
    assert not compare_to_baseline(current, stable).ok


def test_no_baseline_is_not_a_failure():
    report = compare_to_baseline({"mrr": 40.0}, [])
    assert report.ok
    assert report.verdicts[0].status == "no_baseline"


def test_metrics_filter_limits_judgement():
    history = [{"mrr": 40.0, "loss": 0.5}] * 3
    report = compare_to_baseline({"mrr": 30.0, "loss": 0.5}, history, metrics=["loss"])
    assert report.ok
    assert [v.metric for v in report.verdicts] == ["loss"]


def test_check_latest_reads_ledger(tmp_path):
    ledger = RunLedger(str(tmp_path / "ledger.jsonl"))
    for mrr in (40.0, 41.0, 40.5):
        _train_row(ledger, mrr)
    _train_row(ledger, 32.0)
    report = check_latest(ledger, kind="train", model="hisres")
    assert not report.ok
    assert {v.metric for v in report.regressions} == {"mrr"}
    assert "vs median of last 3 run(s)" in report.note


def test_check_latest_empty_ledger(tmp_path):
    ledger = RunLedger(str(tmp_path / "missing.jsonl"))
    report = check_latest(ledger)
    assert report.ok
    assert "no matching runs" in report.note


def test_main_exit_codes(tmp_path, capsys):
    path = str(tmp_path / "ledger.jsonl")
    ledger = RunLedger(path)
    for mrr in (40.0, 41.0, 40.5):
        _train_row(ledger, mrr)
    _train_row(ledger, 40.5)
    assert main(["--ledger", path, "--kind", "train"]) == 0

    _train_row(ledger, 32.0)  # synthetic 20% MRR drop
    code = main(["--ledger", path, "--kind", "train", "--metrics", "mrr"])
    captured = capsys.readouterr()
    assert code == 1
    assert "REGRESSION: mrr" in captured.err
    assert "regressed" in captured.out
