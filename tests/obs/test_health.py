"""Tests for ``repro.obs.health``: watchdogs, bundles, trainer integration."""

import json
import logging
import os

import numpy as np
import pytest

from repro.nn import Module, Parameter
from repro.obs.health import (
    HealthMonitor,
    TrainingAborted,
    WatchdogPolicy,
    health_counter,
)
from repro.obs.metrics import MetricsRegistry
from repro.training import Trainer


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestObserveStep:
    def test_nan_gradient_aborts_by_default(self, registry):
        monitor = HealthMonitor(registry=registry)
        with pytest.raises(TrainingAborted) as excinfo:
            monitor.observe_step(0.5, grad_norm=float("nan"), step=3, epoch=0)
        assert "nan_gradient" in str(excinfo.value)
        assert excinfo.value.event["type"] == "nan_gradient"
        assert monitor.events[0]["step"] == 3

    def test_inf_loss_aborts(self, registry):
        monitor = HealthMonitor(registry=registry)
        with pytest.raises(TrainingAborted):
            monitor.observe_step(float("inf"))

    def test_finite_values_pass(self, registry):
        monitor = HealthMonitor(registry=registry)
        monitor.observe_step(0.5, grad_norm=2.0)
        assert monitor.events == []

    def test_warn_policy_continues(self, registry, caplog):
        monitor = HealthMonitor(
            policy=WatchdogPolicy(nan_policy="warn"), registry=registry
        )
        with caplog.at_level(logging.ERROR, logger="repro.obs.health"):
            monitor.observe_step(float("nan"))
        assert monitor.events[0]["type"] == "nan_loss"
        assert any(r.event == "health.nan_loss" for r in caplog.records)

    def test_off_policy_is_silent(self, registry):
        monitor = HealthMonitor(
            policy=WatchdogPolicy(nan_policy="off"), registry=registry
        )
        monitor.observe_step(float("nan"), grad_norm=float("nan"))
        assert monitor.events == []

    def test_counter_increments_by_type(self, registry):
        monitor = HealthMonitor(
            policy=WatchdogPolicy(nan_policy="warn"), registry=registry
        )
        monitor.observe_step(float("nan"))
        monitor.observe_step(float("nan"))
        counter = health_counter(registry)
        assert counter.labels(type="nan_loss").value == 2


class TestObserveEpoch:
    def test_divergence_fires_after_blowup(self, registry, caplog):
        monitor = HealthMonitor(registry=registry)
        monitor.observe_epoch(0, 0.5)
        with caplog.at_level(logging.WARNING, logger="repro.obs.health"):
            monitor.observe_epoch(1, 5.01)  # > 10 * 0.5
        assert monitor.events[0]["type"] == "loss_divergence"
        assert monitor.events[0]["best_loss"] == 0.5

    def test_divergence_needs_history(self, registry):
        monitor = HealthMonitor(registry=registry)
        monitor.observe_epoch(0, 1000.0)  # first epoch: no best yet
        assert monitor.events == []

    def test_plateau_fires_and_rearms(self, registry):
        policy = WatchdogPolicy(plateau_patience=2)
        monitor = HealthMonitor(policy=policy, registry=registry)
        monitor.observe_epoch(0, 0.5, valid_mrr=0.4)
        monitor.observe_epoch(1, 0.5, valid_mrr=0.39)
        monitor.observe_epoch(2, 0.5, valid_mrr=0.38)
        plateaus = [e for e in monitor.events if e["type"] == "plateau"]
        assert len(plateaus) == 1
        # re-armed: two more stale evals needed before firing again
        monitor.observe_epoch(3, 0.5, valid_mrr=0.37)
        assert len([e for e in monitor.events if e["type"] == "plateau"]) == 1
        monitor.observe_epoch(4, 0.5, valid_mrr=0.36)
        assert len([e for e in monitor.events if e["type"] == "plateau"]) == 2

    def test_plateau_disabled_by_default(self, registry):
        monitor = HealthMonitor(registry=registry)
        for epoch in range(5):
            monitor.observe_epoch(epoch, 0.5, valid_mrr=0.4)
        assert monitor.events == []


class TestBundles:
    def test_bundle_written_on_abort(self, registry, tmp_path):
        monitor = HealthMonitor(
            bundle_dir=str(tmp_path),
            context={"learning_rate": 0.01},
            run_id="r1",
            registry=registry,
        )
        with pytest.raises(TrainingAborted) as excinfo:
            monitor.observe_step(float("nan"), step=2, epoch=1)
        bundle = excinfo.value.bundle
        assert bundle and os.path.isdir(bundle)
        manifest = json.loads(open(os.path.join(bundle, "bundle.json")).read())
        assert manifest["reason"] == "nan_loss"
        assert manifest["run_id"] == "r1"
        assert manifest["context"]["learning_rate"] == 0.01
        assert manifest["events"][0]["type"] == "nan_loss"
        snapshot = json.loads(open(os.path.join(bundle, "metrics.json")).read())
        assert "repro_health_events_total" in snapshot

    def test_one_bundle_per_event_type(self, registry, tmp_path):
        monitor = HealthMonitor(
            policy=WatchdogPolicy(nan_policy="warn"),
            bundle_dir=str(tmp_path),
            registry=registry,
        )
        monitor.observe_step(float("nan"))
        monitor.observe_step(float("nan"))
        bundles = [p for p in os.listdir(tmp_path) if p.startswith("diag-")]
        assert len(bundles) == 1

    def test_no_bundle_dir_means_no_disk_writes(self, registry, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        monitor = HealthMonitor(registry=registry)
        with pytest.raises(TrainingAborted) as excinfo:
            monitor.observe_step(float("nan"))
        assert excinfo.value.bundle is None
        assert os.listdir(tmp_path) == []


class _PoisonedModel(Module):
    """Minimal window-consuming model whose gradients are NaN."""

    def __init__(self):
        super().__init__()
        self.w = Parameter(np.ones(3))

    def loss(self, window, queries):
        return (self.w * float("nan")).sum()

    def predict_entities(self, window, queries):  # pragma: no cover - unused
        return np.zeros((len(queries), 3))


class TestTrainerIntegration:
    def test_forced_nan_gradient_aborts_training_with_bundle(
        self, tiny_dataset, tmp_path, caplog, registry
    ):
        monitor = HealthMonitor(
            bundle_dir=str(tmp_path / "diag"),
            registry=registry,
            run_id="nan-run",
        )
        trainer = Trainer(
            _PoisonedModel(),
            tiny_dataset,
            history_length=2,
            use_global=False,
            health=monitor,
        )
        with caplog.at_level(logging.ERROR, logger="repro.obs.health"):
            with pytest.raises(TrainingAborted) as excinfo:
                trainer.train_epoch(max_timestamps=4)
        assert excinfo.value.event["type"] == "nan_gradient"
        # structured log event fired
        assert any(getattr(r, "event", None) == "health.nan_gradient"
                   for r in caplog.records)
        # counter bumped
        assert health_counter(registry).labels(type="nan_gradient").value >= 1
        # diagnostic bundle on disk
        bundle = excinfo.value.bundle
        assert bundle and os.path.isfile(os.path.join(bundle, "bundle.json"))

    def test_health_false_disables_watchdogs(self, tiny_dataset):
        trainer = Trainer(
            _PoisonedModel(),
            tiny_dataset,
            history_length=2,
            use_global=False,
            health=False,
        )
        loss = trainer.train_epoch(max_timestamps=4)  # no abort
        assert np.isnan(loss)

    def test_trainer_attaches_default_monitor(self, tiny_dataset):
        trainer = Trainer(
            _PoisonedModel(), tiny_dataset, history_length=2, use_global=False
        )
        assert isinstance(trainer.health, HealthMonitor)
        assert trainer.health.context["history_length"] == 2
