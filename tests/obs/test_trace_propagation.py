"""Distributed tracing: context propagation, export/adopt, drop counter."""

import json

import pytest

from repro.obs.metrics import get_registry
from repro.obs.trace import (
    TraceContext,
    Tracer,
    activate,
    current_context,
    disable_tracing,
    enable_tracing,
    span,
)


@pytest.fixture(autouse=True)
def _tracing_off():
    yield
    disable_tracing()


class TestTraceContext:
    def test_new_has_w3c_widths(self):
        ctx = TraceContext.new()
        assert len(ctx.trace_id) == 32 and int(ctx.trace_id, 16) >= 0
        assert len(ctx.span_id) == 16 and int(ctx.span_id, 16) >= 0

    def test_traceparent_round_trip(self):
        ctx = TraceContext.new()
        parsed = TraceContext.parse_traceparent(ctx.to_traceparent())
        assert parsed == ctx

    def test_inject_extract_round_trip(self):
        ctx = TraceContext.new()
        headers = ctx.inject({"Content-Type": "application/json"})
        assert headers[TraceContext.HEADER] == ctx.to_traceparent()
        assert TraceContext.extract(headers) == ctx

    def test_extract_is_case_insensitive_on_dicts(self):
        ctx = TraceContext.new()
        assert TraceContext.extract({"Traceparent": ctx.to_traceparent()}) == ctx

    @pytest.mark.parametrize("header", [
        None,
        "",
        "not-a-traceparent",
        "00-deadbeef-cafe-01",                       # wrong widths
        "00-" + "g" * 32 + "-" + "a" * 16 + "-01",   # non-hex trace id
        "00-" + "0" * 32 + "-" + "a" * 16 + "-01",   # all-zero trace id
        "00-" + "a" * 32 + "-" + "0" * 16 + "-01",   # all-zero span id
    ])
    def test_malformed_traceparent_rejected(self, header):
        assert TraceContext.parse_traceparent(header) is None

    def test_child_keeps_trace_changes_span(self):
        ctx = TraceContext.new()
        child = ctx.child()
        assert child.trace_id == ctx.trace_id
        assert child.span_id != ctx.span_id


class TestRemoteParent:
    def test_root_span_continues_remote_trace(self):
        tracer = Tracer()
        ctx = TraceContext.new()
        with tracer.activate(ctx):
            with tracer.span("server.work") as record:
                pass
        assert record.trace_id == ctx.trace_id
        assert record.parent_span_id == ctx.span_id

    def test_fresh_trace_after_remote_context_exits(self):
        tracer = Tracer()
        ctx = TraceContext.new()
        with tracer.activate(ctx):
            pass
        with tracer.span("later") as record:
            pass
        assert record.trace_id != ctx.trace_id
        assert record.parent_span_id is None

    def test_activate_none_is_noop(self):
        tracer = Tracer()
        with tracer.activate(None):
            with tracer.span("work") as record:
                pass
        assert record.parent_span_id is None

    def test_current_context_prefers_open_span(self):
        tracer = Tracer()
        ctx = TraceContext.new()
        with tracer.activate(ctx):
            assert tracer.current_context() == ctx
            with tracer.span("work") as record:
                inner = tracer.current_context()
                assert inner.trace_id == ctx.trace_id
                assert inner.span_id == record.span_id
        assert tracer.current_context() is None

    def test_global_helpers_work_while_disabled(self):
        # request-id plumbing wants a coherent context even without --trace
        ctx = TraceContext.new()
        with activate(ctx):
            assert current_context() == ctx
        assert current_context() is None


class TestExportAdopt:
    def _worker_spans(self, ctx):
        worker = Tracer()
        with worker.activate(ctx):
            with worker.span("http.request", route="POST /decode"):
                with worker.span("shard.decode", queries=2):
                    pass
        return worker, worker.export_trace(ctx.trace_id, process="worker-shard0")

    def test_export_carries_identity_and_process(self):
        ctx = TraceContext.new()
        _, exported = self._worker_spans(ctx)
        assert [d["name"] for d in exported] == ["http.request", "shard.decode"]
        for d in exported:
            assert d["trace_id"] == ctx.trace_id
            assert d["process"] == "worker-shard0"
            assert d["end_epoch"] >= d["start_epoch"]
        request, decode = exported
        assert request["parent_span_id"] == ctx.span_id
        assert decode["parent_span_id"] == request["span_id"]

    def test_export_seals_open_spans_on_calling_thread(self):
        tracer = Tracer()
        ctx = TraceContext.new()
        with tracer.activate(ctx):
            with tracer.span("http.request"):
                exported = tracer.export_trace(ctx.trace_id, process="w")
        assert [d["name"] for d in exported] == ["http.request"]
        assert exported[0]["end_epoch"] >= exported[0]["start_epoch"]

    def test_adopt_stitches_one_cross_process_trace(self):
        router = Tracer()
        with router.span("router.predict") as parent:
            ctx = router.current_context()
            _, exported = self._worker_spans(ctx)
            added = router.adopt(exported)
        assert added == 2
        spans = router.spans()
        assert {s.trace_id for s in spans} == {parent.trace_id}
        by_name = {s.name: s for s in spans}
        assert by_name["http.request"].parent_span_id == parent.span_id
        assert by_name["http.request"].process == "worker-shard0"
        # adopted spans are re-anchored onto the adopting tracer's clock
        assert by_name["shard.decode"].start >= 0

    def test_adopt_dedups_shared_tracer_spans(self):
        # in-process cluster: router and worker share one tracer, so the
        # worker's exported spans come back span_id-identical — adopt
        # must relabel, not duplicate.
        tracer = Tracer()
        with tracer.span("work") as record:
            exported = tracer.export_trace(record.trace_id, process="worker-shard1")
            assert tracer.adopt(exported) == 0
        assert len(tracer.spans()) == 1
        assert tracer.spans()[0].process == "worker-shard1"

    def test_adopted_process_becomes_chrome_lane(self):
        router = Tracer()
        with router.span("router.predict"):
            ctx = router.current_context()
            _, exported = self._worker_spans(ctx)
            router.adopt(exported)
        payload = json.loads(json.dumps(router.to_chrome_trace()))
        lanes = {e["args"]["name"] for e in payload["traceEvents"] if e["ph"] == "M"}
        assert "worker-shard0" in lanes
        # the adopted spans render under a different display pid than
        # the local ones even though both live in this test process
        pid_of = {e["name"]: e["pid"] for e in payload["traceEvents"] if e["ph"] == "X"}
        assert pid_of["shard.decode"] != pid_of["router.predict"]


class TestDroppedCounter:
    def test_overflow_increments_registry_counter(self):
        counter = get_registry().counter(
            "repro_trace_spans_dropped_total",
            "Tracer spans dropped because the max_spans ring was full.",
        )
        before = counter.value
        tracer = Tracer(max_spans=1)
        for i in range(3):
            with tracer.span(f"s{i}"):
                pass
        assert tracer.dropped == 2
        assert counter.value == before + 2
        text = get_registry().render_prometheus()
        assert "repro_trace_spans_dropped_total" in text
