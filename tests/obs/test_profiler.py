"""Op profiler: attribution, patch/restore hygiene, disabled overhead."""

import json
import time

import numpy as np
import pytest

from repro.nn.tensor import Tensor
from repro.nn.segment import segment_sum
from repro.obs.profiler import OpProfiler, active_profiler


def _rows_by_key(prof):
    return {(r["op"], r["phase"]): r for r in prof.table()}


class TestProfiling:
    def test_forward_and_backward_attribution(self):
        a = Tensor(np.random.rand(8, 8), requires_grad=True)
        b = Tensor(np.random.rand(8, 8), requires_grad=True)
        with OpProfiler() as prof:
            ((a @ b) + a).sum().backward()
        rows = _rows_by_key(prof)
        for op in ("matmul", "add", "sum"):
            assert rows[(op, "forward")]["count"] == 1
            assert rows[(op, "backward")]["count"] == 1
        assert rows[("autograd.backward", "block")]["count"] == 1
        # forward matmul allocated an 8x8 float64 output
        assert rows[("matmul", "forward")]["bytes"] == 8 * 8 * 8

    def test_free_function_hook(self):
        values = Tensor(np.ones(6), requires_grad=True)
        segments = np.array([0, 0, 1, 1, 2, 2])
        with OpProfiler() as prof:
            segment_sum(values, segments, 3).sum().backward()
        rows = _rows_by_key(prof)
        assert rows[("segment_sum", "forward")]["count"] == 1
        assert rows[("segment_sum", "backward")]["count"] == 1

    def test_composite_op_backward_not_double_counted(self):
        # mean is built from sum and mul: both inner nodes fire exactly
        # once in backward, and the composite wrapper must NOT claim the
        # already-wrapped innermost node as a second "mean" row.
        a = Tensor(np.random.rand(16), requires_grad=True)
        with OpProfiler() as prof:
            a.mean().backward()
        rows = _rows_by_key(prof)
        assert ("mean", "backward") not in rows
        assert rows[("sum", "backward")]["count"] == 1
        assert rows[("mul", "backward")]["count"] == 1

    def test_blocks_and_attributed_fraction(self):
        with OpProfiler() as prof:
            with prof.block("outer"):
                with prof.block("inner"):
                    time.sleep(0.01)
        rows = _rows_by_key(prof)
        outer, inner = rows[("outer", "block")], rows[("inner", "block")]
        assert inner["total_s"] >= 0.01
        assert outer["total_s"] >= inner["total_s"]
        # nesting: outer's self time excludes inner's duration
        assert outer["self_s"] < inner["total_s"]
        assert prof.attributed_fraction() > 0.5

    def test_chrome_trace_export(self, tmp_path):
        a = Tensor(np.random.rand(4), requires_grad=True)
        with OpProfiler() as prof:
            (a * 2.0).sum().backward()
        path = prof.write_chrome_trace(str(tmp_path / "profile.json"))
        payload = json.load(open(path))
        assert {e["name"] for e in payload["traceEvents"]} >= {"mul", "sum"}
        assert all(e["ph"] == "X" for e in payload["traceEvents"])
        assert payload["otherData"]["table"]

    def test_format_table_mentions_wall_clock(self):
        with OpProfiler() as prof:
            with prof.block("x"):
                pass
        text = prof.format_table()
        assert "wall-clock" in text and "attributed" in text


class TestPatchHygiene:
    def test_methods_restored_after_disable(self):
        originals = {
            name: getattr(Tensor, name) for name in ("__add__", "sum", "backward")
        }
        with OpProfiler():
            assert Tensor.sum is not originals["sum"]
        for name, fn in originals.items():
            assert getattr(Tensor, name) is fn
        assert active_profiler() is None

    def test_second_profiler_rejected_while_active(self):
        with OpProfiler():
            with pytest.raises(RuntimeError):
                OpProfiler().enable()

    def test_enable_disable_idempotent(self):
        prof = OpProfiler()
        prof.enable()
        prof.enable()
        prof.disable()
        prof.disable()
        assert active_profiler() is None


def _step(a, b):
    return ((a @ b).tanh() + a).sum()


def _time_once(a, b, inner=30):
    t0 = time.perf_counter()
    for _ in range(inner):
        _step(a, b)
    return time.perf_counter() - t0


def test_disabled_profiler_overhead_under_5_percent():
    """Enabling then disabling must leave the tensor fast path untouched.

    Timing noise on a shared CPU dwarfs any single measurement, so the
    bound is asserted on the *median of adjacent baseline/after pairs*
    (alternating order within each pair): drift affects both halves of
    a pair equally and cancels in the ratio.
    """
    import statistics

    rng = np.random.default_rng(0)
    a = Tensor(rng.standard_normal((96, 96)), requires_grad=True)
    b = Tensor(rng.standard_normal((96, 96)), requires_grad=True)
    _time_once(a, b)  # warm caches
    with OpProfiler():  # exercise the patch/restore cycle under test
        _step(a, b)
    ratios = []
    for i in range(12):
        if i % 2 == 0:
            baseline = _time_once(a, b)
            after = _time_once(a, b)
        else:
            after = _time_once(a, b)
            baseline = _time_once(a, b)
        ratios.append(after / baseline)
    median = statistics.median(ratios)
    assert median <= 1.05, (
        f"disabled instrumentation added {(median - 1) * 100:.1f}% overhead"
    )
