"""Synthetic generator: determinism, calibration, planted phenomena."""

import numpy as np
import pytest

from repro.data import PROFILES, DatasetProfile, generate_dataset, get_profile
from repro.data.synthetic import SyntheticTKGGenerator


class TestProfiles:
    def test_all_builtin_profiles_valid(self):
        for name, profile in PROFILES.items():
            assert profile.name == name
            assert profile.num_entities > 0
            total = (
                profile.recurrent_share
                + profile.periodic_share
                + profile.causal_share
                + profile.drifting_share
                + profile.hot_share
                + profile.noise_share
            )
            assert total == pytest.approx(1.0, abs=0.01)

    def test_get_profile_unknown_raises(self):
        with pytest.raises(KeyError):
            get_profile("nope")

    def test_expected_total_facts(self):
        p = get_profile("unit_tiny")
        assert p.expected_total_facts() == p.num_timestamps * p.facts_per_snapshot


class TestGenerator:
    def test_deterministic_given_seed(self):
        a = generate_dataset("unit_tiny")
        b = generate_dataset("unit_tiny")
        np.testing.assert_array_equal(a.quads, b.quads)

    def test_different_seed_differs(self):
        a = generate_dataset("unit_tiny", seed=1)
        b = generate_dataset("unit_tiny", seed=2)
        assert not np.array_equal(a.quads, b.quads)

    def test_ids_in_range(self):
        ds = generate_dataset("unit_tiny")
        assert ds.quads[:, [0, 2]].max() < ds.num_entities
        assert ds.quads[:, 1].max() < ds.num_relations
        assert ds.quads.min() >= 0

    def test_every_timestamp_nonempty(self):
        ds = generate_dataset("unit_tiny")
        profile = get_profile("unit_tiny")
        assert ds.num_timestamps == profile.num_timestamps

    def test_fact_volume_near_target(self):
        for name in ["icews14s_small", "gdelt_small"]:
            ds = generate_dataset(name)
            profile = get_profile(name)
            per_snap = len(ds) / ds.num_timestamps
            assert per_snap == pytest.approx(profile.facts_per_snapshot, rel=0.45)

    def test_no_duplicate_facts_within_snapshot(self):
        ds = generate_dataset("unit_tiny")
        seen = set()
        for row in ds.quads:
            key = tuple(row)
            assert key not in seen
            seen.add(key)

    def test_repetition_ratio_is_high(self):
        # the ICEWS-like phenomenon global-history models rely on
        # (real ICEWS14 sits around 0.5)
        ds = generate_dataset("icews14s_small")
        assert ds.repetition_ratio() > 0.4

    def test_zipf_activity_heavy_tailed(self):
        ds = generate_dataset("icews14s_small")
        counts = np.bincount(
            np.concatenate([ds.quads[:, 0], ds.quads[:, 2]]), minlength=ds.num_entities
        )
        counts = np.sort(counts)[::-1]
        top_decile = counts[: ds.num_entities // 10].sum()
        assert top_decile / counts.sum() > 0.25

    def test_causal_chains_present(self):
        """Effect facts must follow their trigger by exactly one step."""
        profile = DatasetProfile(
            name="causal_probe",
            num_entities=20,
            num_relations=4,
            num_timestamps=30,
            facts_per_snapshot=8,
            time_granularity="1 step",
            recurrent_share=0.0,
            periodic_share=0.0,
            causal_share=1.0,
            drifting_share=0.0,
            hot_share=0.0,
            noise_share=0.0,
            causal_trigger_rate=0.5,
            causal_effect_prob=1.0,
            seed=3,
        )
        # replicate generate()'s internal build order on a twin generator
        # so the inspected rules match the ones used for the dataset
        twin = SyntheticTKGGenerator(profile)
        twin._build_cyclic_templates()
        twin._build_periodic_templates()
        twin._build_drifting_templates()
        rules = twin._build_causal_rules()
        ds = SyntheticTKGGenerator(profile).generate()
        by_time = {
            t: set(map(tuple, ds.quads[ds.quads[:, 3] == t][:, :3]))
            for t in range(profile.num_timestamps)
        }
        # forward check: with effect_prob = 1, every trigger firing is
        # followed by its effect one step later (restricted to rules whose
        # trigger triples don't collide with another rule's)
        trigger_space = {}
        for i, rule in enumerate(rules):
            for s in rule.subjects:
                trigger_space.setdefault((s, rule.trigger_relation, rule.mid), set()).add(i)
        checked = 0
        for i, rule in enumerate(rules):
            if rule.mid in rule.subjects or rule.trigger_relation == rule.effect_relation:
                # degenerate rules whose effects can masquerade as triggers
                continue
            triggers = [
                (s, rule.trigger_relation, rule.mid)
                for s in rule.subjects
                if trigger_space[(s, rule.trigger_relation, rule.mid)] == {i}
            ]
            for t in range(profile.num_timestamps - 1):
                for s, r1, mid in triggers:
                    if (s, r1, mid) in by_time[t]:
                        assert (mid, rule.effect_relation, s) in by_time[t + 1]
                        checked += 1
        assert checked > 10

    def test_periodic_templates_fire_on_schedule(self):
        profile = DatasetProfile(
            name="periodic_probe",
            num_entities=20,
            num_relations=4,
            num_timestamps=28,
            facts_per_snapshot=6,
            time_granularity="1 step",
            recurrent_share=0.0,
            periodic_share=1.0,
            causal_share=0.0,
            drifting_share=0.0,
            hot_share=0.0,
            noise_share=0.0,
            periods=(7,),
            seed=4,
        )
        twin = SyntheticTKGGenerator(profile)
        twin._build_cyclic_templates()
        templates = twin._build_periodic_templates()
        ds = SyntheticTKGGenerator(profile).generate()
        for template in templates[:5]:
            fires = set(
                ds.quads[
                    (ds.quads[:, 0] == template.subject)
                    & (ds.quads[:, 1] == template.relation)
                    & (ds.quads[:, 2] == template.object)
                ][:, 3].tolist()
            )
            scheduled = set(range(template.phase, 28, template.period))
            # the triple fires at every scheduled step; extra occurrences can
            # come from a colliding template sharing the same triple
            assert scheduled <= fires

    def test_cyclic_templates_phase_determines_object(self):
        profile = DatasetProfile(
            name="cyclic_probe",
            num_entities=20,
            num_relations=4,
            num_timestamps=40,
            facts_per_snapshot=8,
            time_granularity="1 step",
            recurrent_share=1.0,
            periodic_share=0.0,
            causal_share=0.0,
            drifting_share=0.0,
            hot_share=0.0,
            noise_share=0.0,
            burst_fraction=0.0,
            seed=5,
        )
        twin = SyntheticTKGGenerator(profile)
        templates = twin._build_cyclic_templates()
        ds = SyntheticTKGGenerator(profile).generate()
        multi = [tp for tp in templates if len(tp.objects) > 1][:3]
        assert multi, "expected some multi-object templates"
        for template in multi:
            fires = ds.quads[
                (ds.quads[:, 0] == template.subject) & (ds.quads[:, 1] == template.relation)
            ]
            for s, r, o, t in fires:
                # the emitted object must be the phase-determined one
                # (unless another template shares the pair)
                if int(o) in template.objects:
                    assert int(o) == template.object_at(int(t)) or any(
                        other is not template
                        and other.subject == template.subject
                        and other.relation == template.relation
                        for other in templates
                    )
