"""TKGDataset container, splits, and views."""

import numpy as np
import pytest

from repro.data import Quadruple, TKGDataset
from repro.data.dataset import SplitView


def _toy_quads():
    # 10 timestamps, 2 facts each
    rows = []
    for t in range(10):
        rows.append((t % 4, 0, (t + 1) % 4, t))
        rows.append((3, 1, t % 4, t))
    return np.array(rows, dtype=np.int64)


class TestQuadruple:
    def test_inverse(self):
        q = Quadruple(1, 2, 3, 7)
        inv = q.inverse(num_relations=5)
        assert inv == Quadruple(3, 7, 1, 7)

    def test_as_tuple(self):
        assert Quadruple(1, 2, 3, 4).as_tuple() == (1, 2, 3, 4)


class TestTKGDataset:
    def test_basic_properties(self):
        ds = TKGDataset(_toy_quads(), num_entities=4, num_relations=2)
        assert len(ds) == 20
        assert ds.num_timestamps == 10
        np.testing.assert_array_equal(ds.timestamps, np.arange(10))

    def test_quads_sorted_by_time(self):
        quads = _toy_quads()[::-1]  # reversed input
        ds = TKGDataset(quads, num_entities=4, num_relations=2)
        assert np.all(np.diff(ds.quads[:, 3]) >= 0)

    def test_entity_out_of_range_raises(self):
        with pytest.raises(ValueError):
            TKGDataset(np.array([[5, 0, 0, 0]]), num_entities=4, num_relations=2)

    def test_relation_out_of_range_raises(self):
        with pytest.raises(ValueError):
            TKGDataset(np.array([[0, 3, 0, 0]]), num_entities=4, num_relations=2)

    def test_negative_id_raises(self):
        with pytest.raises(ValueError):
            TKGDataset(np.array([[0, 0, -1, 0]]), num_entities=4, num_relations=2)

    def test_chronological_split_boundaries(self):
        ds = TKGDataset(_toy_quads(), num_entities=4, num_relations=2)
        train, valid, test = ds.chronological_split()
        assert train.quads[:, 3].max() < valid.quads[:, 3].min()
        assert valid.quads[:, 3].max() < test.quads[:, 3].min()
        assert len(train) + len(valid) + len(test) == len(ds)

    def test_split_never_divides_a_snapshot(self):
        ds = TKGDataset(_toy_quads(), num_entities=4, num_relations=2)
        train, valid, test = ds.chronological_split()
        for a, b in [(train, valid), (valid, test)]:
            assert set(a.timestamps).isdisjoint(set(b.timestamps))

    def test_split_bad_fractions(self):
        ds = TKGDataset(_toy_quads(), num_entities=4, num_relations=2)
        with pytest.raises(ValueError):
            ds.chronological_split(train=0.9, valid=0.2)

    def test_split_too_few_timestamps(self):
        quads = np.array([[0, 0, 1, 0], [1, 0, 2, 1]])
        ds = TKGDataset(quads, num_entities=4, num_relations=2)
        with pytest.raises(ValueError):
            ds.chronological_split()

    def test_lazy_split_properties(self):
        ds = TKGDataset(_toy_quads(), num_entities=4, num_relations=2)
        assert len(ds.train) > 0 and len(ds.valid) > 0 and len(ds.test) > 0

    def test_add_inverse(self):
        quads = np.array([[1, 0, 2, 5]])
        doubled = TKGDataset.add_inverse(quads, num_relations=3)
        assert doubled.shape == (2, 4)
        np.testing.assert_array_equal(doubled[1], [2, 3, 1, 5])

    def test_statistics_keys(self):
        ds = TKGDataset(_toy_quads(), num_entities=4, num_relations=2, name="toy")
        stats = ds.statistics()
        assert stats["dataset"] == "toy"
        assert stats["entities"] == 4
        assert stats["training_facts"] + stats["validation_facts"] + stats["testing_facts"] == 20

    def test_repetition_ratio_bounds(self, tiny_dataset):
        ratio = tiny_dataset.repetition_ratio()
        assert 0.0 <= ratio <= 1.0

    def test_repetition_ratio_all_repeats(self):
        # same fact at every timestamp -> test facts all repeat
        quads = np.array([[0, 0, 1, t] for t in range(20)])
        ds = TKGDataset(quads, num_entities=2, num_relations=1)
        assert ds.repetition_ratio() == 1.0


class TestSplitView:
    def test_iteration_yields_quadruples(self):
        view = SplitView(np.array([[0, 1, 2, 3]]))
        facts = list(view)
        assert facts == [Quadruple(0, 1, 2, 3)]

    def test_at_time(self):
        view = SplitView(_toy_quads())
        at5 = view.at_time(5)
        assert len(at5) == 2 and np.all(at5[:, 3] == 5)

    def test_at_time_missing_returns_empty(self):
        view = SplitView(_toy_quads())
        assert len(view.at_time(99)) == 0

    def test_facts_by_time_partition(self):
        view = SplitView(_toy_quads())
        groups = view.facts_by_time()
        assert set(groups) == set(range(10))
        assert sum(len(v) for v in groups.values()) == len(view)
        for t, chunk in groups.items():
            assert np.all(chunk[:, 3] == t)

    def test_facts_by_time_empty(self):
        assert SplitView(np.zeros((0, 4))).facts_by_time() == {}
