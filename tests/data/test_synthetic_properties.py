"""Property-based tests (hypothesis) on the synthetic TKG generator.

The generator is the foundation every benchmark and training run stands
on, so these properties are checked across randomly drawn profiles at a
scale well beyond the hand-picked built-ins: id bounds, chronologically
non-decreasing timestamps, determinism under a fixed seed, and the two
regime mechanisms the paper's analysis leans on — partner drift (the
drifting templates really change objects across regime boundaries) and
the rotating hot set (hot snapshots concentrate interactions on a small
cast).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.profiles import DatasetProfile
from repro.data.synthetic import SyntheticTKGGenerator


def profiles(**overrides):
    """Random but generate-able DatasetProfile values."""
    base = dict(
        num_entities=st.integers(20, 400),
        num_relations=st.integers(2, 40),
        num_timestamps=st.integers(4, 60),
        facts_per_snapshot=st.integers(4, 80),
        seed=st.integers(0, 2**31 - 1),
    )
    base.update(overrides)
    return st.builds(
        DatasetProfile,
        name=st.just("prop"),
        time_granularity=st.just("1 step"),
        **base,
    )


class TestGeneratorBounds:
    @given(profiles())
    @settings(max_examples=25, deadline=None)
    def test_ids_and_timestamps_in_bounds(self, profile):
        dataset = SyntheticTKGGenerator(profile).generate()
        quads = dataset.quads
        assert quads.ndim == 2 and quads.shape[1] == 4
        assert len(quads) > 0
        assert quads[:, 0].min() >= 0 and quads[:, 0].max() < profile.num_entities
        assert quads[:, 2].min() >= 0 and quads[:, 2].max() < profile.num_entities
        assert quads[:, 1].min() >= 0 and quads[:, 1].max() < profile.num_relations
        assert quads[:, 3].min() >= 0 and quads[:, 3].max() < profile.num_timestamps

    @given(profiles())
    @settings(max_examples=25, deadline=None)
    def test_timestamps_non_decreasing(self, profile):
        quads = SyntheticTKGGenerator(profile).generate().quads
        assert np.all(np.diff(quads[:, 3]) >= 0)

    @given(profiles())
    @settings(max_examples=25, deadline=None)
    def test_no_duplicate_facts_within_snapshot(self, profile):
        quads = SyntheticTKGGenerator(profile).generate().quads
        assert len(np.unique(quads, axis=0)) == len(quads)

    @given(profiles(), st.integers(0, 2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_seed_determinism(self, profile, seed):
        first = SyntheticTKGGenerator(profile, seed=seed).generate().quads
        second = SyntheticTKGGenerator(profile, seed=seed).generate().quads
        np.testing.assert_array_equal(first, second)


class TestRegimeMechanisms:
    @given(
        profiles(
            num_timestamps=st.integers(30, 80),
            facts_per_snapshot=st.integers(20, 60),
            # all budget on the drifting mechanism; fast regimes so the
            # timeline crosses several boundaries
            drifting_share=st.just(1.0),
            recurrent_share=st.just(0.0),
            periodic_share=st.just(0.0),
            causal_share=st.just(0.0),
            hot_share=st.just(0.0),
            noise_share=st.just(0.0),
            regime_length_range=st.just((4, 8)),
        )
    )
    @settings(max_examples=10, deadline=None)
    def test_partner_drift_changes_objects_across_regimes(self, profile):
        generator = SyntheticTKGGenerator(profile)
        dataset = generator.generate()
        quads = dataset.quads
        # at least one (s, r) pair must pair with different objects in
        # the first vs the last third of the timeline — stale partners
        # outrank current ones for pure frequency statistics
        early = quads[quads[:, 3] < profile.num_timestamps // 3]
        late = quads[quads[:, 3] >= 2 * profile.num_timestamps // 3]
        drifted = 0
        for s, r in {(int(q[0]), int(q[1])) for q in early}:
            early_objects = set(early[(early[:, 0] == s) & (early[:, 1] == r)][:, 2].tolist())
            late_rows = late[(late[:, 0] == s) & (late[:, 1] == r)]
            late_objects = set(late_rows[:, 2].tolist())
            if late_objects and late_objects - early_objects:
                drifted += 1
        assert drifted >= 1

    @given(
        profiles(
            num_entities=st.integers(100, 400),
            num_timestamps=st.integers(20, 40),
            facts_per_snapshot=st.integers(30, 80),
            hot_share=st.just(1.0),
            recurrent_share=st.just(0.0),
            periodic_share=st.just(0.0),
            causal_share=st.just(0.0),
            drifting_share=st.just(0.0),
            noise_share=st.just(0.0),
            hot_set_size=st.integers(4, 8),
        )
    )
    @settings(max_examples=10, deadline=None)
    def test_hot_set_concentrates_interactions(self, profile):
        quads = SyntheticTKGGenerator(profile).generate().quads
        # every snapshot's facts must live on at most hot_set_size
        # entities — the rotating cast the recency encoders can read
        for t in np.unique(quads[:, 3]):
            snapshot = quads[quads[:, 3] == t]
            cast = np.unique(np.concatenate([snapshot[:, 0], snapshot[:, 2]]))
            assert len(cast) <= profile.hot_set_size

    @given(profiles(num_entities=st.integers(200, 500),
                    num_timestamps=st.integers(12, 60)))
    @settings(max_examples=10, deadline=None)
    def test_splits_partition_chronologically(self, profile):
        dataset = SyntheticTKGGenerator(profile).generate()
        train_t = dataset.train.quads[:, 3]
        valid_t = dataset.valid.quads[:, 3]
        test_t = dataset.test.quads[:, 3]
        if len(train_t) and len(valid_t):
            assert train_t.max() < valid_t.min()
        if len(valid_t) and len(test_t):
            assert valid_t.max() < test_t.min()
