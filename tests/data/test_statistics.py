"""Temporal dataset statistics module."""

import numpy as np
import pytest

from repro.data import TKGDataset, generate_dataset
from repro.data.statistics import (
    _gini,
    degree_distribution,
    full_report,
    pair_object_ambiguity,
    snapshot_sizes,
    temporal_drift,
)


class TestSnapshotSizes:
    def test_counts_per_timestamp(self):
        quads = np.array([[0, 0, 1, 0], [1, 0, 2, 0], [0, 0, 1, 2]])
        ds = TKGDataset(quads, num_entities=3, num_relations=1)
        np.testing.assert_array_equal(snapshot_sizes(ds), [2, 0, 1])


class TestDegreeDistribution:
    def test_keys_and_ranges(self, tiny_dataset):
        stats = degree_distribution(tiny_dataset)
        assert 0 <= stats["gini"] <= 1
        assert 0 < stats["coverage"] <= 1
        assert stats["top_decile_share"] <= 1

    def test_gini_uniform_is_zero(self):
        assert _gini(np.ones(10)) == pytest.approx(0.0, abs=1e-9)

    def test_gini_concentrated_is_high(self):
        values = np.zeros(100)
        values[0] = 100
        assert _gini(values) > 0.9

    def test_gini_empty(self):
        assert _gini(np.zeros(0)) == 0.0


class TestAmbiguity:
    def test_counts_distinct_objects(self):
        quads = np.array([[0, 0, 1, 0], [0, 0, 2, 1], [0, 0, 1, 2], [3, 1, 4, 0]])
        ds = TKGDataset(quads, num_entities=5, num_relations=2)
        stats = pair_object_ambiguity(ds)
        assert stats["num_pairs"] == 2
        assert stats["max_objects_per_pair"] == 2
        assert stats["ambiguous_pair_fraction"] == pytest.approx(0.5)

    def test_synthetic_profiles_are_ambiguous(self):
        ds = generate_dataset("icews14s_small")
        stats = pair_object_ambiguity(ds)
        # the frequency-mask oracle must be imperfect by construction
        assert stats["ambiguous_pair_fraction"] > 0.2


class TestDrift:
    def test_stationary_data_no_drift(self):
        quads = np.array([[0, 0, 1, t] for t in range(20)])
        ds = TKGDataset(quads, num_entities=2, num_relations=1)
        assert temporal_drift(ds, window=5) == 0.0

    def test_full_turnover(self):
        rows = [[0, 0, 1, t] for t in range(5)] + [[2, 0, 3, t] for t in range(15, 20)]
        ds = TKGDataset(np.array(rows), num_entities=4, num_relations=1)
        assert temporal_drift(ds, window=5) == 1.0

    def test_synthetic_profiles_drift(self):
        ds = generate_dataset("icews14s_small")
        assert temporal_drift(ds) > 0.3  # regime changes + bursts + hot sets


class TestFullReport:
    def test_contains_all_sections(self, tiny_dataset):
        report = full_report(tiny_dataset)
        for key in ("dataset", "repetition_ratio", "snapshot_size_mean",
                    "temporal_drift", "degree_gini", "pair_num_pairs"):
            assert key in report
