"""TSV load/save round-trips and error handling."""

import os

import numpy as np
import pytest

from repro.data import generate_dataset, load_tsv, save_tsv


class TestRoundTrip:
    def test_save_load_preserves_facts(self, tmp_path):
        ds = generate_dataset("unit_tiny")
        path = str(tmp_path / "tkg.tsv")
        save_tsv(ds, path)
        loaded = load_tsv(path, num_entities=ds.num_entities,
                          num_relations=ds.num_relations)
        np.testing.assert_array_equal(np.sort(loaded.quads, axis=0),
                                      np.sort(ds.quads, axis=0))

    def test_name_defaults_to_filename(self, tmp_path):
        path = str(tmp_path / "my_events.tsv")
        with open(path, "w") as handle:
            handle.write("0\t0\t1\t0\n")
        assert load_tsv(path).name == "my_events"

    def test_vocab_sizes_inferred(self, tmp_path):
        path = str(tmp_path / "t.tsv")
        with open(path, "w") as handle:
            handle.write("0\t2\t7\t0\n")
        ds = load_tsv(path)
        assert ds.num_entities == 8
        assert ds.num_relations == 3

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = str(tmp_path / "t.tsv")
        with open(path, "w") as handle:
            handle.write("# header\n\n0\t0\t1\t0\n")
        assert len(load_tsv(path)) == 1

    def test_malformed_line_raises_with_location(self, tmp_path):
        path = str(tmp_path / "t.tsv")
        with open(path, "w") as handle:
            handle.write("0\t0\t1\t0\n0\t0\n")
        with pytest.raises(ValueError, match=":2"):
            load_tsv(path)

    def test_granularity_label_carried(self, tmp_path):
        path = str(tmp_path / "t.tsv")
        with open(path, "w") as handle:
            handle.write("0\t0\t1\t0\n")
        ds = load_tsv(path, time_granularity="15 mins")
        assert ds.time_granularity == "15 mins"
