"""NetworkX interoperability."""

import networkx as nx
import numpy as np
import pytest

from repro.data import TKGDataset
from repro.data.networkx_bridge import (
    dataset_to_networkx,
    hub_entities,
    snapshot_to_networkx,
    snapshot_topology,
)


@pytest.fixture
def ds():
    quads = np.array([
        [0, 0, 1, 0], [1, 1, 2, 0], [0, 0, 2, 0],
        [3, 0, 4, 1],
    ])
    return TKGDataset(quads, num_entities=6, num_relations=2, name="nx_toy")


class TestConversion:
    def test_snapshot_graph_edges(self, ds):
        g = snapshot_to_networkx(ds, 0)
        assert g.number_of_edges() == 3
        assert g.number_of_nodes() == 6  # all entities present as nodes
        assert g.graph["timestamp"] == 0

    def test_relation_labels(self, ds):
        g = snapshot_to_networkx(ds, 0, relation_names=["knows", "visits"])
        labels = {d["relation"] for _, _, d in g.edges(data=True)}
        assert labels == {"knows", "visits"}

    def test_dataset_graph_carries_time(self, ds):
        g = dataset_to_networkx(ds)
        assert g.number_of_edges() == 4
        times = {d["time"] for _, _, d in g.edges(data=True)}
        assert times == {0, 1}

    def test_empty_snapshot(self, ds):
        g = snapshot_to_networkx(ds, 99)
        assert g.number_of_edges() == 0


class TestTopology:
    def test_summary_fields(self, ds):
        topo = snapshot_topology(ds, 0)
        assert topo["nodes"] == 3
        assert topo["components"] == 1
        assert 0 < topo["density"] <= 1

    def test_empty_snapshot_topology(self, ds):
        topo = snapshot_topology(ds, 99)
        assert topo["nodes"] == 0 and topo["components"] == 0

    def test_hub_entities_ordered(self, ds):
        hubs = hub_entities(ds, top_k=3)
        values = [h["degree_centrality"] for h in hubs]
        assert values == sorted(values, reverse=True)
        assert hubs[0]["entity"] in (0, 1, 2)
