"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.data.dataset import TKGDataset
from repro.graphs.global_graph import GlobalGraphBuilder
from repro.graphs.history import HistoryVocabulary
from repro.graphs.snapshot import build_snapshot
from repro.nn import functional as F
from repro.nn.tensor import Tensor, concat
from repro.training.metrics import filtered_ranks, hits_at, mrr

# ----------------------------------------------------------------------
# strategies


def quad_arrays(max_entities=8, max_relations=4, max_time=6):
    """(n, 4) integer quad arrays with valid id ranges."""
    return st.integers(1, 30).flatmap(
        lambda n: arrays(
            np.int64,
            (n, 4),
            elements=st.integers(0, max_entities - 1),
        ).map(
            lambda a: np.column_stack(
                [
                    a[:, 0] % max_entities,
                    a[:, 1] % max_relations,
                    a[:, 2] % max_entities,
                    a[:, 3] % max_time,
                ]
            )
        )
    )


float_matrices = arrays(
    np.float64,
    st.tuples(st.integers(1, 6), st.integers(1, 6)),
    elements=st.floats(-10, 10, allow_nan=False),
)


# ----------------------------------------------------------------------
# autodiff invariants


class TestAutogradProperties:
    @given(float_matrices)
    @settings(max_examples=40, deadline=None)
    def test_softmax_rows_are_distributions(self, x):
        out = F.softmax(Tensor(x)).data
        assert np.all(out >= 0)
        np.testing.assert_allclose(out.sum(axis=-1), 1.0, rtol=1e-9)

    @given(float_matrices)
    @settings(max_examples=40, deadline=None)
    def test_log_softmax_exp_consistency(self, x):
        ls = F.log_softmax(Tensor(x)).data
        np.testing.assert_allclose(np.exp(ls).sum(axis=-1), 1.0, rtol=1e-9)

    @given(float_matrices, float_matrices)
    @settings(max_examples=40, deadline=None)
    def test_addition_commutes(self, a, b):
        if a.shape != b.shape:
            return
        left = (Tensor(a) + Tensor(b)).data
        right = (Tensor(b) + Tensor(a)).data
        np.testing.assert_allclose(left, right)

    @given(float_matrices)
    @settings(max_examples=40, deadline=None)
    def test_grad_of_sum_is_ones(self, x):
        t = Tensor(x, requires_grad=True)
        t.sum().backward()
        np.testing.assert_allclose(t.grad, np.ones_like(x))

    @given(float_matrices)
    @settings(max_examples=30, deadline=None)
    def test_concat_split_roundtrip(self, x):
        t = Tensor(x, requires_grad=True)
        halves = concat([t, t], axis=0)
        assert halves.shape[0] == 2 * x.shape[0]
        np.testing.assert_allclose(halves.data[: x.shape[0]], x)

    @given(
        arrays(np.float64, st.integers(2, 20), elements=st.floats(-5, 5, allow_nan=False)),
        st.integers(1, 4),
    )
    @settings(max_examples=40, deadline=None)
    def test_segment_softmax_partitions_unity(self, scores, num_segments):
        segments = np.arange(len(scores)) % num_segments
        out = F.segment_softmax(Tensor(scores), segments, num_segments).data
        for seg in range(num_segments):
            member = out[segments == seg]
            if len(member):
                assert abs(member.sum() - 1.0) < 1e-6


# ----------------------------------------------------------------------
# dataset invariants


class TestDatasetProperties:
    @given(quad_arrays())
    @settings(max_examples=40, deadline=None)
    def test_inverse_doubles_and_roundtrips(self, quads):
        doubled = TKGDataset.add_inverse(quads, num_relations=4)
        assert len(doubled) == 2 * len(quads)
        # applying the inverse map twice recovers the original triple
        inv = doubled[len(quads):]
        np.testing.assert_array_equal(inv[:, 0], quads[:, 2])
        np.testing.assert_array_equal(inv[:, 2], quads[:, 0])
        np.testing.assert_array_equal(inv[:, 1] - 4, quads[:, 1])

    @given(quad_arrays(max_time=12))
    @settings(max_examples=40, deadline=None)
    def test_split_partitions_facts(self, quads):
        ds = TKGDataset(quads, num_entities=8, num_relations=4)
        if ds.num_timestamps < 4:
            return
        try:
            train, valid, test = ds.chronological_split()
        except ValueError:
            return
        assert len(train) + len(valid) + len(test) == len(ds)
        if len(train) and len(valid):
            assert train.quads[:, 3].max() < valid.quads[:, 3].min()
        if len(valid) and len(test):
            assert valid.quads[:, 3].max() < test.quads[:, 3].min()

    @given(quad_arrays())
    @settings(max_examples=40, deadline=None)
    def test_snapshot_inverse_symmetry(self, quads):
        g = build_snapshot(quads, num_entities=8, num_relations=4)
        triples = set(map(tuple, g.triples()))
        for s, r, o in list(triples):
            partner = (o, r + 4, s) if r < 4 else (o, r - 4, s)
            assert partner in triples

    @given(quad_arrays())
    @settings(max_examples=40, deadline=None)
    def test_in_degree_sums_to_edges(self, quads):
        g = build_snapshot(quads, num_entities=8, num_relations=4)
        assert g.in_degree().sum() == g.num_edges


# ----------------------------------------------------------------------
# history / global graph invariants


class TestHistoryProperties:
    @given(quad_arrays(max_time=1))
    @settings(max_examples=40, deadline=None)
    def test_mask_matches_facts(self, quads):
        vocab = HistoryVocabulary(8, 4)
        vocab.add_snapshot(quads)
        mask = vocab.seen_mask(quads[:, 0], quads[:, 1])
        # every recorded fact is marked seen for its own query pair
        assert np.all(mask[np.arange(len(quads)), quads[:, 2]] == 1.0)

    @given(quad_arrays(max_time=1))
    @settings(max_examples=40, deadline=None)
    def test_counts_upper_bound_mask(self, quads):
        vocab = HistoryVocabulary(8, 4)
        vocab.add_snapshot(quads)
        mask = vocab.seen_mask(quads[:, 0], quads[:, 1])
        counts = vocab.count_matrix(quads[:, 0], quads[:, 1])
        assert np.all((counts > 0) == (mask > 0))

    @given(quad_arrays(max_time=1))
    @settings(max_examples=40, deadline=None)
    def test_global_graph_is_subset_of_history(self, quads):
        builder = GlobalGraphBuilder(8, 4)
        builder.add_snapshot(quads)
        pairs = {(int(q[0]), int(q[1])) for q in quads}
        triples = builder.relevant_triples(pairs)
        history = {tuple(q[:3]) for q in quads}
        assert set(map(tuple, triples)) <= history
        # and covers every fact whose pair was queried
        assert set(map(tuple, triples)) == {h for h in history if (h[0], h[1]) in pairs}


# ----------------------------------------------------------------------
# metric invariants


class TestMetricProperties:
    @given(arrays(np.int64, st.integers(1, 50), elements=st.integers(1, 100)))
    @settings(max_examples=40, deadline=None)
    def test_mrr_bounds(self, ranks):
        value = mrr(ranks)
        assert 0 < value <= 1

    @given(arrays(np.int64, st.integers(1, 50), elements=st.integers(1, 100)))
    @settings(max_examples=40, deadline=None)
    def test_hits_monotone_in_k(self, ranks):
        values = [hits_at(ranks, k) for k in (1, 3, 10, 100)]
        assert values == sorted(values)

    @given(
        arrays(np.float64, st.tuples(st.integers(1, 8), st.integers(4, 10)),
               elements=st.floats(-5, 5, allow_nan=False)),
    )
    @settings(max_examples=40, deadline=None)
    def test_filtering_never_hurts_rank(self, scores):
        n, num_entities = scores.shape
        queries = np.column_stack([
            np.zeros(n, dtype=np.int64),
            np.zeros(n, dtype=np.int64),
            np.arange(n, dtype=np.int64) % num_entities,
        ])
        unfiltered = filtered_ranks(scores, queries, {})
        full_filter = {(0, 0): set(range(num_entities))}
        filtered = filtered_ranks(scores, queries, full_filter)
        assert np.all(filtered <= unfiltered)
        # filtering out every other candidate forces rank 1
        assert np.all(filtered == 1)
