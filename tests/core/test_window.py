"""WindowBuilder: history assembly for prediction steps."""

import numpy as np
import pytest

from repro.core.window import HistoryWindow, WindowBuilder


def _quads(t, rows):
    return np.array([[s, r, o, t] for s, r, o in rows], dtype=np.int64)


def _builder(**kw):
    defaults = dict(num_entities=10, num_relations=3, history_length=3, granularity=2)
    defaults.update(kw)
    return WindowBuilder(**defaults)


class TestRollingHistory:
    def test_window_grows_until_limit(self):
        b = _builder(history_length=2)
        for t in range(4):
            b.absorb(_quads(t, [(0, 0, 1)]))
        w = b.window_for(_quads(4, [(0, 0, 1)]), prediction_time=4)
        assert len(w.snapshots) == 2  # capped at history_length

    def test_deltas_relative_to_prediction(self):
        b = _builder()
        b.absorb(_quads(5, [(0, 0, 1)]))
        b.absorb(_quads(6, [(0, 0, 1)]))
        w = b.window_for(_quads(8, [(0, 0, 1)]), prediction_time=8)
        assert w.deltas == [3.0, 2.0]

    def test_merged_windows_count(self):
        b = _builder(history_length=4, granularity=2)
        for t in range(4):
            b.absorb(_quads(t, [(t % 2, 0, 1)]))
        w = b.window_for(_quads(4, [(0, 0, 1)]), prediction_time=4)
        assert len(w.merged) == 3  # 4 snapshots, window 2, stride 1

    def test_empty_history(self):
        b = _builder()
        w = b.window_for(_quads(0, [(0, 0, 1)]), prediction_time=0)
        assert w.snapshots == [] and w.merged == []
        assert not b.history_filled

    def test_reset(self):
        b = _builder()
        b.absorb(_quads(0, [(0, 0, 1)]))
        assert b.history_filled
        b.reset()
        assert not b.history_filled

    def test_empty_snapshot_absorb_is_noop(self):
        b = _builder()
        b.absorb(np.zeros((0, 4)))
        assert not b.history_filled

    def test_snapshot_graphs_have_inverse_edges(self):
        b = _builder()
        b.absorb(_quads(0, [(0, 0, 1)]))
        w = b.window_for(_quads(1, [(0, 0, 1)]), prediction_time=1)
        assert w.snapshots[0].num_edges == 2


class TestGlobalGraphAssembly:
    def test_global_graph_contains_query_relevant_history(self):
        b = _builder()
        b.absorb(_quads(0, [(0, 0, 1), (5, 2, 6)]))
        queries = _quads(1, [(0, 0, 3)])
        w = b.window_for(queries, prediction_time=1)
        triples = set(map(tuple, w.global_graph.triples()))
        assert (0, 0, 1) in triples
        assert all(t[:2] == (0, 0) for t in triples)

    def test_inverse_facts_reach_inverse_queries(self):
        b = _builder()
        b.absorb(_quads(0, [(0, 0, 1)]))
        # inverse query pair (1, 0 + 3)
        queries = np.array([[1, 3, 0, 1]])
        w = b.window_for(queries, prediction_time=1)
        assert (1, 3, 0) in set(map(tuple, w.global_graph.triples()))

    def test_use_global_false_gives_none(self):
        b = _builder(use_global=False)
        b.absorb(_quads(0, [(0, 0, 1)]))
        w = b.window_for(_quads(1, [(0, 0, 1)]), prediction_time=1)
        assert w.global_graph is None

    def test_global_max_history_pruning(self):
        b = _builder(global_max_history=2)
        b.absorb(_quads(0, [(0, 0, 1)]))
        b.absorb(_quads(5, [(0, 0, 2)]))
        w = b.window_for(_quads(6, [(0, 0, 3)]), prediction_time=6)
        triples = set(map(tuple, w.global_graph.triples()))
        assert (0, 0, 2) in triples and (0, 0, 1) not in triples


class TestVocabularyTracking:
    def test_masks_present_when_tracked(self):
        b = _builder(track_vocabulary=True)
        b.absorb(_quads(0, [(0, 0, 1)]))
        queries = _quads(1, [(0, 0, 2)])
        w = b.window_for(queries, prediction_time=1)
        assert w.history_masks is not None
        assert w.history_masks[0, 1] == 1.0
        assert w.history_counts[0, 1] == 1.0

    def test_masks_absent_by_default(self):
        b = _builder()
        b.absorb(_quads(0, [(0, 0, 1)]))
        w = b.window_for(_quads(1, [(0, 0, 1)]), prediction_time=1)
        assert w.history_masks is None

    def test_vocabulary_reset(self):
        b = _builder(track_vocabulary=True)
        b.absorb(_quads(0, [(0, 0, 1)]))
        b.reset()
        w = b.window_for(_quads(0, [(0, 0, 2)]), prediction_time=0)
        assert w.history_masks.sum() == 0


class TestGraphCacheCapacity:
    def test_cache_capacity_bounds_entries(self):
        b = _builder(cache_capacity=2)
        for t in range(6):
            b.absorb(_quads(t, [(t % 3, 0, (t + 1) % 3)]))
            b.window_for(_quads(t, [(0, 0, 1)]), prediction_time=t)
        stats = b.cache_stats()
        for name in ("snapshot", "merged", "global"):
            assert stats.get(f"{name}_entries", 0) <= 2

    def test_entry_gauges_track_cache_sizes(self):
        from repro.obs.metrics import get_registry

        b = _builder(cache_capacity=8)
        for t in range(3):
            b.absorb(_quads(t, [(0, 0, 1)]))
            b.window_for(_quads(t, [(0, 0, 1)]), prediction_time=t)
        stats = b.cache_stats()
        assert "repro_window_cache_entries" in get_registry().render_prometheus()
        for name in ("snapshot", "merged", "global"):
            assert b._cache_gauges[name].value == stats[f"{name}_entries"]
        assert stats["snapshot_entries"] >= 1


class TestScopedWindows:
    def test_scope_entities_identity_when_unscoped(self):
        from repro.nn.tensor import Tensor

        b = _builder()
        b.absorb(_quads(0, [(0, 0, 1)]))
        w = b.window_for(_quads(1, [(0, 0, 1)]), prediction_time=1)
        assert not w.is_scoped
        matrix = Tensor(np.arange(20, dtype=np.float64).reshape(10, 2))
        assert w.scope_entities(matrix) is matrix

    def test_local_nodes_enter_fingerprint(self):
        b = _builder()
        b.absorb(_quads(0, [(0, 0, 1)]))
        w = b.window_for(_quads(1, [(0, 0, 1)]), prediction_time=1)
        from dataclasses import replace

        scoped = replace(
            w, local_nodes=np.array([0, 1, 3], dtype=np.int64), _fingerprint=None
        )
        assert scoped.is_scoped
        assert scoped.num_local_entities == 3
        assert scoped.fingerprint() != w.fingerprint()
