"""Batched timeline evaluation plane.

The acceptance-critical properties:

- **grouping invariants** (hypothesis): on random synthetic walks every
  group produced by :func:`group_steps` is fingerprint-equal and
  maximal — a group never merges across a window-content change, and
  adjacent groups always differ;
- **bitwise parity**: the grouped blocked decode equals the
  per-timestamp encode-once path bitwise (float64) for every split
  model, entities and relations;
- **sampled evaluation fence**: an evaluation walk through a
  :class:`ScopedExecutionPlan` with exhaustive fanouts is bitwise-equal
  to the full-plan walk, and capped fanouts complete;
- the evaluator/forecaster walks land the same metrics as a
  hand-written per-timestamp reference loop.
"""

import itertools
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import MODEL_REGISTRY, build_model
from repro.core import HisRES, HisRESConfig
from repro.core.execution import (
    EncoderStateCache,
    ExecutionPlan,
    ScopedExecutionPlan,
    TimelineBatcher,
    TimelineStep,
    group_steps,
)
from repro.core.forecaster import Forecaster
from repro.core.window import WindowBuilder
from repro.graphs.sampler import NeighborSampler
from repro.training import TimelineEvaluator, seed_everything
from repro.training.evaluator import build_time_filter
from repro.training.metrics import filtered_ranks, summarize_ranks

E, R = 24, 5

SPLIT_KEYS = sorted(
    key
    for key in MODEL_REGISTRY
    if getattr(build_model(key, E, R, dim=8), "supports_encode_split", False)
)


def _quads(rng, t, n=6):
    return np.stack(
        [
            rng.integers(0, E, n),
            rng.integers(0, R, n),
            rng.integers(0, E, n),
            np.full(n, t),
        ],
        axis=1,
    ).astype(np.int64)


def _hisres(dim=8, use_global=True):
    config = HisRESConfig(
        embedding_dim=dim, history_length=2, decoder_channels=4, dropout=0.0
    )
    return HisRES(E, R, config)


def _sealed_walk(builder, rng, periods=3, per_seal=3):
    """A sealed-cadence walk: history seals every ``per_seal`` steps, so
    consecutive steps between seals share window content *and*
    prediction time — the serving-store shape that forms groups."""
    steps = []
    t = 0
    builder.absorb(_quads(rng, t))
    for _ in range(periods):
        t += 1
        for _ in range(per_seal):
            queries = _quads(rng, t, n=4)
            window = builder.window_for(queries, prediction_time=t)
            steps.append(TimelineStep(t, window, queries))
        builder.absorb(_quads(rng, t))
    return steps


class TestGroupingProperties:
    @given(
        absorbs=st.lists(st.booleans(), min_size=2, max_size=10),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_groups_fingerprint_equal_and_maximal(self, absorbs, seed):
        rng = np.random.default_rng(seed)
        builder = WindowBuilder(E, R, history_length=2, use_global=False)
        t = 0
        builder.absorb(_quads(rng, t))
        steps = []
        for absorb in absorbs:
            if absorb:
                t += 1
                builder.absorb(_quads(rng, t))
            queries = _quads(rng, t + 1, n=2)
            window = builder.window_for(queries, prediction_time=t + 1)
            steps.append(TimelineStep(t + 1, window, queries))

        groups = list(group_steps(steps))
        # every group is fingerprint-equal: never merges across a change
        for group in groups:
            first = group[0].window.fingerprint()
            assert all(s.window.fingerprint() == first for s in group)
        # maximal: adjacent groups always differ
        for left, right in zip(groups, groups[1:]):
            assert left[-1].window.fingerprint() != right[0].window.fingerprint()
        # order-preserving, lossless partition
        flat = [s for g in groups for s in g]
        assert flat == steps
        # oracle: exactly itertools.groupby on the fingerprint stream
        expected = [
            len(list(g))
            for _, g in itertools.groupby(steps, key=lambda s: s.window.fingerprint())
        ]
        assert [len(g) for g in groups] == expected

    def test_non_groupable_yields_singletons(self):
        rng = np.random.default_rng(0)
        builder = WindowBuilder(E, R, history_length=2, use_global=False)
        steps = _sealed_walk(builder, rng, periods=2, per_seal=3)
        groups = list(group_steps(steps, groupable=False))
        assert [len(g) for g in groups] == [1] * len(steps)


class TestBlockedDecodeParity:
    @pytest.mark.parametrize("key", SPLIT_KEYS)
    def test_blocked_walk_bitwise_equals_per_timestamp(self, key):
        spec = MODEL_REGISTRY[key]
        # two identically-initialised instances so stateful encoders
        # (HGLS's entity memory) see each window exactly once per route
        seed_everything(11)
        reference_model = build_model(key, E, R, dim=8)
        seed_everything(11)
        batched_model = build_model(key, E, R, dim=8)
        reference_model.eval()
        batched_model.eval()

        def make_builder():
            return WindowBuilder(
                E,
                R,
                history_length=2,
                use_global=spec.requirements.global_graph,
                track_vocabulary=spec.requirements.vocabulary,
            )

        steps_ref = _sealed_walk(make_builder(), np.random.default_rng(3))
        steps_bat = _sealed_walk(make_builder(), np.random.default_rng(3))

        reference_plan = ExecutionPlan(
            reference_model, cache=EncoderStateCache(capacity=8, owner="ref")
        )
        expected = [
            reference_plan.entity_scores(s.window, s.queries) for s in steps_ref
        ]

        batched_plan = ExecutionPlan(
            batched_model, cache=EncoderStateCache(capacity=8, owner="bat")
        )
        batcher = TimelineBatcher(batched_plan, num_entities=E, owner="parity_test")
        got = [rows for _, rows, _ in batcher.run(iter(steps_bat), entities=True)]

        assert len(got) == len(expected)
        for want, have in zip(expected, got):
            np.testing.assert_array_equal(np.asarray(want), np.asarray(have))

    def test_grouping_actually_batches(self):
        """A sealed-cadence walk with no global graph forms real groups
        (one encode + one decode per seal period, not per timestamp)."""
        model = build_model("regcn", E, R, dim=8)
        model.eval()
        builder = WindowBuilder(E, R, history_length=2, use_global=False)
        steps = _sealed_walk(builder, np.random.default_rng(5), periods=3, per_seal=4)
        cache = EncoderStateCache(capacity=8, owner="group_test")
        plan = ExecutionPlan(model, cache=cache)
        batcher = TimelineBatcher(plan, num_entities=E, owner="group_test")
        list(batcher.run(iter(steps), entities=True))
        stats = batcher.last_stats
        assert stats["steps"] == 12
        assert stats["groups"] == 3
        assert stats["mean_group_size"] == 4.0
        assert cache.misses == 3  # one live encode per group

    def test_relation_rows_match_per_timestamp(self):
        seed_everything(23)
        reference_model = _hisres()
        seed_everything(23)
        batched_model = _hisres()
        reference_model.eval()
        batched_model.eval()

        def walk():
            builder = WindowBuilder(E, R, history_length=2, use_global=False)
            return _sealed_walk(builder, np.random.default_rng(9))

        steps_ref, steps_bat = walk(), walk()
        reference_plan = ExecutionPlan(
            reference_model, cache=EncoderStateCache(capacity=8, owner="relref")
        )
        expected = [
            reference_plan.entity_and_relation_scores(s.window, s.queries)
            for s in steps_ref
        ]
        batched_plan = ExecutionPlan(
            batched_model, cache=EncoderStateCache(capacity=8, owner="relbat")
        )
        batcher = TimelineBatcher(batched_plan, num_entities=E, owner="rel_test")
        got = list(batcher.run(iter(steps_bat), entities=True, relations=True))
        for (want_e, want_r), (_, have_e, have_r) in zip(expected, got):
            np.testing.assert_array_equal(np.asarray(want_e), np.asarray(have_e))
            np.testing.assert_array_equal(np.asarray(want_r), np.asarray(have_r))


class TestEvaluatorBatchedWalk:
    def _reference_walk(self, model, evaluator, builder, eval_split, warmup):
        """The pre-batcher per-timestamp loop, kept as an oracle."""
        plan = evaluator.make_plan(model)
        builder.reset()
        for split in warmup:
            for _, quads in sorted(split.facts_by_time().items()):
                builder.absorb(quads)
        ranks = []
        for t, quads in sorted(eval_split.facts_by_time().items()):
            time_filter = build_time_filter(quads, evaluator.num_relations)
            queries = evaluator.queries_with_inverse(quads)
            window = builder.window_for(queries, prediction_time=t)
            scores = plan.entity_scores(window, queries)
            ranks.append(filtered_ranks(scores, queries, time_filter))
            builder.absorb(quads)
        return summarize_ranks(ranks)

    def test_walk_metrics_match_reference(self, tiny_dataset):
        seed_everything(31)
        model = build_model("regcn", tiny_dataset.num_entities,
                            tiny_dataset.num_relations, dim=8)
        model.eval()
        evaluator = TimelineEvaluator(tiny_dataset)

        def builder():
            return WindowBuilder(
                tiny_dataset.num_entities, tiny_dataset.num_relations,
                history_length=2, use_global=False,
            )

        expected = self._reference_walk(
            model, evaluator, builder(), tiny_dataset.valid, (tiny_dataset.train,)
        )
        got = evaluator.evaluate_walk(
            model, builder(), tiny_dataset.valid, warmup_splits=(tiny_dataset.train,)
        )
        assert got.mrr == expected.mrr
        assert got.hits(1) == expected.hits(1)
        assert got.hits(10) == expected.hits(10)
        stats = evaluator.last_walk_stats
        assert stats["eval_steps"] == stats["eval_timestamps"]
        assert stats["eval_groups"] >= 1
        assert stats["eval_wall_seconds"] > 0

    def test_joint_walk_stats_and_results(self, tiny_dataset):
        seed_everything(37)
        model = build_model("hisres", tiny_dataset.num_entities,
                            tiny_dataset.num_relations, dim=8)
        model.eval()
        evaluator = TimelineEvaluator(tiny_dataset)
        builder = WindowBuilder(
            tiny_dataset.num_entities, tiny_dataset.num_relations,
            history_length=2, use_global=True,
        )
        entity_result, relation_result = evaluator.evaluate_joint(
            model, builder, tiny_dataset.valid,
            warmup_splits=(tiny_dataset.train,), max_timestamps=3,
        )
        assert 0 <= entity_result.mrr <= 1
        assert relation_result is not None
        assert 1 <= evaluator.last_walk_stats["eval_timestamps"] <= 3


class TestSampledEvaluationFence:
    def _eval(self, model, dataset, plan):
        evaluator = TimelineEvaluator(dataset)
        builder = WindowBuilder(
            dataset.num_entities, dataset.num_relations,
            history_length=2, use_global=False,
        )
        return evaluator.evaluate_walk(
            model, builder, dataset.valid,
            warmup_splits=(dataset.train,), max_timestamps=4, plan=plan,
        )

    def test_exhaustive_fanout_bitwise_equals_full_plan(self, tiny_dataset):
        seed_everything(41)
        model = build_model("regcn", tiny_dataset.num_entities,
                            tiny_dataset.num_relations, dim=8)
        model.eval()
        full_plan = ExecutionPlan(
            model, cache=EncoderStateCache(capacity=8, owner="fence_full")
        )
        full = self._eval(model, tiny_dataset, full_plan)
        scoped_plan = ScopedExecutionPlan(
            ExecutionPlan(model, cache=EncoderStateCache(capacity=8, owner="fence_scoped")),
            NeighborSampler("full,full", owner="fence_test"),
        )
        sampled = self._eval(model, tiny_dataset, scoped_plan)
        # exhaustive fanouts are the identity: bitwise-equal metrics
        assert sampled.mrr == full.mrr
        assert np.array_equal(sampled.ranks, full.ranks)
        assert scoped_plan.scoped_encodes == 0

    def test_capped_fanout_completes(self, tiny_dataset):
        seed_everything(43)
        model = build_model("regcn", tiny_dataset.num_entities,
                            tiny_dataset.num_relations, dim=8)
        model.eval()
        scoped_plan = ScopedExecutionPlan(
            ExecutionPlan(model, cache=EncoderStateCache(capacity=8, owner="fence_cap")),
            NeighborSampler("2,2", seed=0, owner="fence_cap"),
        )
        result = self._eval(model, tiny_dataset, scoped_plan)
        assert 0 <= result.mrr <= 1


class TestForecasterTimeline:
    def test_predict_timeline_matches_predict_batch(self, tiny_dataset):
        seed_everything(47)
        model = build_model("regcn", tiny_dataset.num_entities,
                            tiny_dataset.num_relations, dim=8)
        model.eval()

        def forecaster():
            f = Forecaster(
                model,
                num_entities=tiny_dataset.num_entities,
                num_relations=tiny_dataset.num_relations,
                use_global=False,
            )
            f.warm_up(tiny_dataset.train, max_timestamps=4)
            return f

        # multi-row requests: single-row decodes may route through a
        # different BLAS kernel (gemv vs gemm) and differ at the ulp
        queries = [
            np.array([[i, i % tiny_dataset.num_relations],
                      [i + 1, (i + 2) % tiny_dataset.num_relations],
                      [i + 3, (i + 1) % tiny_dataset.num_relations]])
            for i in range(5)
        ]
        reference = forecaster()
        expected = [reference.predict_batch(q, prediction_time=99) for q in queries]

        batched = forecaster()
        got = batched.predict_timeline((q, 99) for q in queries)
        for want, have in zip(expected, got):
            np.testing.assert_array_equal(np.asarray(want), np.asarray(have))
        stats = batched.last_timeline_stats
        assert stats["steps"] == 5
        # no history moved between requests: one group, one encode
        assert stats["groups"] == 1

    def test_predict_timeline_observe_seals_groups(self, tiny_dataset):
        seed_everything(53)
        model = build_model("regcn", tiny_dataset.num_entities,
                            tiny_dataset.num_relations, dim=8)
        model.eval()
        f = Forecaster(
            model,
            num_entities=tiny_dataset.num_entities,
            num_relations=tiny_dataset.num_relations,
            use_global=False,
        )
        f.warm_up(tiny_dataset.train, max_timestamps=4)
        quads = tiny_dataset.valid.quads[:4]
        q = np.array([[1, 0]])
        scores = f.predict_timeline(
            [(q, 90), (q, 90), (q, 91, quads), (q, 92), (q, 92)]
        )
        assert len(scores) == 5
        # the observation between step 3 and 4 splits the walk
        assert f.last_timeline_stats["groups"] >= 2


class TestCliSampledEval:
    def test_eval_sampler_flag(self, tmp_path, capsys):
        from repro.cli import main

        checkpoint = str(tmp_path / "model.ckpt")
        assert main([
            "train", "regcn", "unit_tiny",
            "--dim", "8", "--epochs", "1", "--patience", "1",
            "--save", checkpoint,
        ]) == 0
        capsys.readouterr()
        ledger = str(tmp_path / "ledger.jsonl")
        assert main([
            "eval", "unit_tiny",
            "--load-checkpoint", checkpoint,
            "--sampler", "fanout=8,4",
            "--ledger", ledger,
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["sampler"] == "fanout=8,4"
        assert payload["eval_groups"] >= 1
        assert payload["eval_wall_seconds"] > 0
        record = json.loads(open(ledger).read().strip().splitlines()[-1])
        assert record["metrics"]["eval_groups"] >= 1
