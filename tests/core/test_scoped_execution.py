"""Query-scoped execution: scatter decode, parity fence, scoped loss.

The acceptance fence of the sampled execution plane: with exhaustive
fan-out the sampler returns the identity scope, the scoped plan
delegates verbatim to the full-graph plan, and decode scores are
bitwise-identical (float64) for every split model.  Capped runs must be
reproducible under a fixed sampler seed and still carry gradients back
to the parameters.
"""

import numpy as np
import pytest

from repro.baselines import MODEL_REGISTRY, build_model
from repro.core import EncoderStateCache, ExecutionPlan, ScopedExecutionPlan, scatter_rows
from repro.core.window import WindowBuilder
from repro.data import generate_dataset
from repro.graphs import NeighborSampler
from repro.nn.tensor import Tensor

SPLIT_MODELS = ["regcn", "cen", "renet", "logcl", "retia", "rpc", "hgls", "hisres"]


def _setup(key, dim=16):
    dataset = generate_dataset("unit_tiny")
    spec = MODEL_REGISTRY.get(key)
    model = build_model(key, dataset.num_entities, dataset.num_relations, dim=dim)
    use_global = key in ("hisres", "logcl") or (
        spec is not None and spec.requirements.global_graph
    )
    builder = WindowBuilder(
        dataset.num_entities,
        dataset.num_relations,
        history_length=3,
        use_global=use_global,
        track_vocabulary=spec is not None and spec.requirements.vocabulary,
    )
    items = sorted(dataset.train.facts_by_time().items())
    for t, quads in items[:-1]:
        builder.absorb(quads)
    t, quads = items[-1]
    queries = np.column_stack([quads[:, 0], quads[:, 1], quads[:, 2]])
    window = builder.window_for(queries, prediction_time=t)
    if hasattr(model, "eval"):
        model.eval()
    return model, window, queries


class TestScatterRows:
    def test_scatter_overwrites_selected_rows(self):
        reference = Tensor(np.arange(12, dtype=np.float64).reshape(4, 3))
        rows = Tensor(np.full((2, 3), -1.0))
        out = scatter_rows(reference, np.array([1, 3]), rows)
        np.testing.assert_array_equal(out.data[[0, 2]], reference.data[[0, 2]])
        np.testing.assert_array_equal(out.data[[1, 3]], rows.data)

    def test_scatter_backward_reaches_rows(self):
        reference = Tensor(np.zeros((4, 3)), requires_grad=True)
        rows = Tensor(np.ones((2, 3)), requires_grad=True)
        out = scatter_rows(reference, np.array([0, 2]), rows)
        out.sum().backward()
        np.testing.assert_array_equal(rows.grad, np.ones((2, 3)))
        # scattered-over reference rows receive no gradient
        np.testing.assert_array_equal(reference.grad[[0, 2]], np.zeros((2, 3)))
        np.testing.assert_array_equal(reference.grad[[1, 3]], np.ones((2, 3)))


class TestIdentityParity:
    @pytest.mark.parametrize("key", SPLIT_MODELS)
    def test_exhaustive_fanout_is_bitwise_identical(self, key):
        model, window, queries = _setup(key)
        plan = ExecutionPlan(model, cache=EncoderStateCache(owner=f"t-{key}"))
        scoped = ScopedExecutionPlan(plan, NeighborSampler("full", owner=f"t-{key}"))
        assert scoped.supports_scoping
        full = plan.entity_scores(window, queries)
        sampled = scoped.entity_scores(window, queries)
        np.testing.assert_array_equal(sampled, full)
        assert scoped.stats()["identity_encodes"] >= 1
        assert scoped.stats()["scoped_encodes"] == 0

    def test_static_models_pass_through(self):
        model, window, queries = _setup("distmult")
        plan = ExecutionPlan(model, cache=EncoderStateCache(owner="t-static"))
        scoped = ScopedExecutionPlan(plan, NeighborSampler("2,1", owner="t-static"))
        assert not scoped.supports_scoping
        np.testing.assert_array_equal(
            scoped.entity_scores(window, queries), plan.entity_scores(window, queries)
        )


class TestCappedScoping:
    @pytest.mark.parametrize("key", ["regcn", "hisres"])
    def test_capped_scores_reproducible(self, key):
        model, window, queries = _setup(key)
        scores = []
        for _ in range(2):
            plan = ExecutionPlan(model, cache=EncoderStateCache(owner=f"c-{key}"))
            scoped = ScopedExecutionPlan(
                plan, NeighborSampler("2,1", seed=7, owner=f"c-{key}")
            )
            scores.append(scoped.entity_scores(window, queries))
        np.testing.assert_array_equal(scores[0], scores[1])

    def test_scoped_loss_carries_gradients(self):
        model, window, queries = _setup("regcn")
        model.train()
        plan = ExecutionPlan(model, cache=EncoderStateCache(owner="g-regcn"))
        scoped = ScopedExecutionPlan(
            plan, NeighborSampler("2,1", seed=7, owner="g-regcn")
        )
        model.zero_grad()
        loss = scoped.loss(window, queries)
        assert np.isfinite(loss.item())
        loss.backward()
        grads = [p.grad for p in model.parameters() if p.grad is not None]
        assert grads and any(np.abs(g).sum() > 0 for g in grads)

    def test_scoped_state_never_cached_as_full(self):
        model, window, queries = _setup("regcn")
        cache = EncoderStateCache(owner="nc-regcn")
        plan = ExecutionPlan(model, cache=cache)
        scoped = ScopedExecutionPlan(
            plan, NeighborSampler("2,1", seed=7, owner="nc-regcn")
        )
        scoped.entity_scores(window, queries)
        # the full window's state must not have been populated by the
        # scoped decode — only a real full encode may claim that key
        assert cache.peek(model, window) is None
