"""GlobalRelevanceEncoder and ConvTransEDecoder unit tests."""

import numpy as np
import pytest

from repro.core.decoder import ConvTransEDecoder
from repro.core.relevance import GlobalRelevanceEncoder
from repro.graphs.snapshot import SnapshotGraph
from repro.nn.tensor import Tensor

D, E, R = 8, 6, 4


def _graph():
    return SnapshotGraph(
        src=np.array([0, 1, 2]),
        rel=np.array([0, 1, 2]),
        dst=np.array([1, 2, 0]),
        num_entities=E,
        num_relations=R,
    )


def _embs(rng):
    return (
        Tensor(rng.normal(size=(E, D)), requires_grad=True),
        Tensor(rng.normal(size=(R, D)), requires_grad=True),
    )


class TestGlobalRelevanceEncoder:
    @pytest.mark.parametrize("aggregator", ["convgat", "compgcn", "rgat"])
    def test_aggregators_produce_embeddings(self, rng, aggregator):
        encoder = GlobalRelevanceEncoder(D, num_layers=2, aggregator=aggregator)
        e, r = _embs(rng)
        out = encoder(e, r, _graph())
        assert out.shape == (E, D)
        assert np.all(np.isfinite(out.data))

    def test_unknown_aggregator_raises(self):
        with pytest.raises(ValueError):
            GlobalRelevanceEncoder(D, aggregator="mlp")

    def test_layer_count_respected(self, rng):
        one = GlobalRelevanceEncoder(D, num_layers=1)
        three = GlobalRelevanceEncoder(D, num_layers=3)
        assert len(list(three.layers)) == 3
        assert three.num_parameters() > one.num_parameters()

    def test_gradients_reach_inputs(self, rng):
        encoder = GlobalRelevanceEncoder(D, num_layers=1)
        e, r = _embs(rng)
        encoder(e, r, _graph()).sum().backward()
        assert e.grad is not None and r.grad is not None

    def test_relations_never_updated(self, rng):
        """Paper §3.4.2: no relation updating in the global encoder."""
        encoder = GlobalRelevanceEncoder(D, num_layers=2)
        e, r = _embs(rng)
        r_before = r.data.copy()
        encoder(e, r, _graph())
        np.testing.assert_array_equal(r.data, r_before)


class TestConvTransEDecoder:
    def test_logit_shape(self, rng):
        decoder = ConvTransEDecoder(D, channels=4)
        s = Tensor(rng.normal(size=(5, D)))
        r = Tensor(rng.normal(size=(5, D)))
        candidates = Tensor(rng.normal(size=(E, D)))
        assert decoder(s, r, candidates).shape == (5, E)

    def test_query_embedding_dim(self, rng):
        decoder = ConvTransEDecoder(D, channels=4)
        fused = decoder.query_embedding(
            Tensor(rng.normal(size=(3, D))), Tensor(rng.normal(size=(3, D)))
        )
        assert fused.shape == (3, D)

    def test_batchnorm_optional(self, rng):
        with_bn = ConvTransEDecoder(D, channels=4, use_batchnorm=True)
        without = ConvTransEDecoder(D, channels=4, use_batchnorm=False)
        assert with_bn.bn is not None and without.bn is None
        # both run
        s = Tensor(rng.normal(size=(3, D)))
        r = Tensor(rng.normal(size=(3, D)))
        c = Tensor(rng.normal(size=(E, D)))
        assert with_bn(s, r, c).shape == without(s, r, c).shape

    def test_eval_deterministic_despite_dropout(self, rng):
        decoder = ConvTransEDecoder(D, channels=4, dropout=0.5)
        decoder.eval()
        s = Tensor(rng.normal(size=(2, D)))
        r = Tensor(rng.normal(size=(2, D)))
        c = Tensor(rng.normal(size=(E, D)))
        np.testing.assert_allclose(decoder(s, r, c).data, decoder(s, r, c).data)

    def test_score_depends_on_both_query_parts(self, rng):
        decoder = ConvTransEDecoder(D, channels=4)
        decoder.eval()
        s = Tensor(rng.normal(size=(1, D)))
        r1 = Tensor(rng.normal(size=(1, D)))
        r2 = Tensor(rng.normal(size=(1, D)))
        c = Tensor(rng.normal(size=(E, D)))
        assert not np.allclose(decoder(s, r1, c).data, decoder(s, r2, c).data)

    def test_gradients_reach_candidates(self, rng):
        decoder = ConvTransEDecoder(D, channels=4)
        s = Tensor(rng.normal(size=(2, D)), requires_grad=True)
        r = Tensor(rng.normal(size=(2, D)))
        c = Tensor(rng.normal(size=(E, D)), requires_grad=True)
        decoder(s, r, c).sum().backward()
        assert s.grad is not None and c.grad is not None
