"""The compiled graph compute plane: layouts, caches, and metric parity.

The acceptance bar for the refactor: a full HisRES evaluation pass on
``icews14s_small`` must produce the *same* filtered MRR / Hits@k through
the fused compute plane as through the pre-refactor scatter path
(``segment_impl("reference")``), to within 1e-9.
"""

import numpy as np
import pytest

from repro.core import HisRES, HisRESConfig
from repro.core.window import WindowBuilder
from repro.data.profiles import PROFILES
from repro.data.synthetic import SyntheticTKGGenerator
from repro.graphs import build_snapshot
from repro.graphs.compiled import (
    CompiledGraph,
    compiled,
    compiled_cache_stats,
    reset_compiled_cache_stats,
)
from repro.nn.segment import segment_impl
from repro.training import TimelineEvaluator, seed_everything


def _graph(rng, num_entities=9, num_relations=3, n=12):
    quads = np.stack(
        [
            rng.integers(0, num_entities, n),
            rng.integers(0, num_relations, n),
            rng.integers(0, num_entities, n),
            np.zeros(n, dtype=np.int64),
        ],
        axis=1,
    )
    return build_snapshot(quads, num_entities, num_relations)


class TestCompiledGraph:
    def test_memoized_on_instance(self, rng):
        graph = _graph(rng)
        reset_compiled_cache_stats()
        plan = compiled(graph)
        assert compiled(graph) is plan
        assert compiled_cache_stats() == {"builds": 1, "hits": 1}

    def test_distinct_graphs_build_separately(self, rng):
        reset_compiled_cache_stats()
        compiled(_graph(rng))
        compiled(_graph(rng))
        assert compiled_cache_stats()["builds"] == 2

    def test_matches_snapshot_quantities(self, rng):
        graph = _graph(rng)
        plan = CompiledGraph(graph)
        np.testing.assert_array_equal(plan.in_degree, graph.in_degree())
        np.testing.assert_allclose(plan.in_degree_norm, graph.in_degree_norm())
        np.testing.assert_array_equal(plan.active_nodes, graph.active_nodes())
        assert plan.num_edges == graph.num_edges

    def test_layouts_cover_all_axes(self, rng):
        graph = _graph(rng)
        plan = CompiledGraph(graph)
        assert plan.dst_layout.num_segments == graph.num_entities
        assert plan.rel_layout.num_segments == graph.num_relations
        assert plan.src_layout.num_segments == graph.num_entities
        np.testing.assert_array_equal(
            plan.rel_layout.counts, np.bincount(graph.rel, minlength=graph.num_relations)
        )


class TestSnapshotMemoization:
    def test_derived_quantities_cached(self, rng):
        graph = _graph(rng)
        assert graph.in_degree() is graph.in_degree()
        assert graph.in_degree_norm() is graph.in_degree_norm()
        assert graph.active_nodes() is graph.active_nodes()


class TestWindowBuilderCaches:
    def _timeline(self, rng, timestamps=5, n=10, num_entities=12, num_relations=4):
        return [
            np.stack(
                [
                    rng.integers(0, num_entities, n),
                    rng.integers(0, num_relations, n),
                    rng.integers(0, num_entities, n),
                    np.full(n, t, dtype=np.int64),
                ],
                axis=1,
            )
            for t in range(timestamps)
        ]

    def _builder(self, **kw):
        defaults = dict(history_length=3, granularity=2, use_global=True)
        defaults.update(kw)
        return WindowBuilder(12, 4, **defaults)

    def test_snapshot_builds_survive_reset(self, rng):
        timeline = self._timeline(rng)
        builder = self._builder()
        for quads in timeline:
            builder.absorb(quads)
        first_pass = builder.cache_stats()
        assert first_pass["snapshot_builds"] == len(timeline)
        assert first_pass["snapshot_hits"] == 0

        builder.reset()  # epoch boundary
        for quads in timeline:
            builder.absorb(quads)
        second_pass = builder.cache_stats()
        assert second_pass["snapshot_builds"] == len(timeline)  # no new builds
        assert second_pass["snapshot_hits"] == len(timeline)

    def test_merged_windows_cached_incrementally(self, rng):
        timeline = self._timeline(rng)
        builder = self._builder(use_global=False)
        queries = np.array([[0, 0, 0, 0]])
        for t, quads in enumerate(timeline):
            builder.window_for(queries, prediction_time=t)
            builder.absorb(quads)
        stats = builder.cache_stats()
        assert stats["merged_builds"] > 0
        # sliding windows share all but the newest merge with the
        # previous step, so hits must dominate once the window fills
        assert stats["merged_hits"] > 0

    def test_same_window_reuses_graph_instances(self, rng):
        timeline = self._timeline(rng)
        builder = self._builder(use_global=False)
        for quads in timeline:
            builder.absorb(quads)
        a = builder.window_for(np.array([[0, 0, 0, 0]]), prediction_time=99)
        b = builder.window_for(np.array([[0, 0, 0, 0]]), prediction_time=99)
        for ga, gb in zip(a.merged, b.merged):
            assert ga is gb  # same instance => compiled layouts shared too

    def test_global_graph_lru_hits_within_version(self, rng):
        timeline = self._timeline(rng)
        builder = self._builder()
        for quads in timeline:
            builder.absorb(quads)
        queries = np.array([[1, 0, 0, 0], [2, 1, 0, 0]])
        a = builder.window_for(queries, prediction_time=9)
        b = builder.window_for(queries, prediction_time=9)
        assert a.global_graph is b.global_graph
        stats = builder.cache_stats()
        assert stats["global_hits"] == 1 and stats["global_builds"] == 1

    def test_global_cache_invalidated_by_absorb(self, rng):
        timeline = self._timeline(rng)
        builder = self._builder()
        queries = np.array([[1, 0, 0, 0]])
        builder.absorb(timeline[0])
        a = builder.window_for(queries, prediction_time=9)
        builder.absorb(timeline[1])  # version changes
        b = builder.window_for(queries, prediction_time=9)
        assert a.global_graph is not b.global_graph
        assert builder.cache_stats()["global_builds"] == 2

    def test_version_is_content_chained(self, rng):
        timeline = self._timeline(rng)
        b1, b2 = self._builder(), self._builder()
        for quads in timeline:
            b1.absorb(quads)
            b2.absorb(quads)
        assert b1.version == b2.version
        b1.reset()
        assert b1.version == 0
        for quads in timeline:
            b1.absorb(quads)
        assert b1.version == b2.version  # same content => same version

    def test_lru_capacity_bounds_caches(self, rng):
        builder = self._builder(use_global=False, cache_capacity=2)
        for quads in self._timeline(rng, timestamps=6):
            builder.absorb(quads)
        assert len(builder._snapshot_cache) <= 2


class TestMetricParity:
    def test_fused_matches_reference_eval(self):
        """Identical filtered metrics through both compute paths (1e-9)."""
        dataset = SyntheticTKGGenerator(PROFILES["icews14s_small"]).generate()
        config = HisRESConfig(
            embedding_dim=16, history_length=3, decoder_channels=4, dropout=0.0
        )
        seed_everything(1234)
        model = HisRES(dataset.num_entities, dataset.num_relations, config)
        model.eval()
        evaluator = TimelineEvaluator(dataset)

        results = {}
        for impl in ("reference", "fused"):
            builder = WindowBuilder(
                dataset.num_entities,
                dataset.num_relations,
                history_length=config.history_length,
                use_global=True,
            )
            with segment_impl(impl):
                results[impl] = evaluator.evaluate_walk(
                    model,
                    builder,
                    dataset.test,
                    warmup_splits=(dataset.train, dataset.valid),
                ).as_dict()

        assert results["reference"]["num_queries"] == results["fused"]["num_queries"]
        for metric in ("mrr", "hits@1", "hits@3", "hits@10"):
            assert results["fused"][metric] == pytest.approx(
                results["reference"][metric], abs=1e-9
            ), f"{metric} diverged between compute paths"
