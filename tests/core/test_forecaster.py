"""Forecaster: the online prediction API."""

import numpy as np
import pytest

from repro.core import Forecaster, HisRES, HisRESConfig


def _forecaster(tiny_dataset, **kw):
    cfg = HisRESConfig(embedding_dim=8, history_length=2, decoder_channels=4)
    model = HisRES(tiny_dataset.num_entities, tiny_dataset.num_relations, cfg)
    defaults = dict(history_length=2, use_global=True)
    defaults.update(kw)
    return Forecaster(model, tiny_dataset.num_entities, tiny_dataset.num_relations, **defaults)


class TestObservation:
    def test_tracks_current_time(self, tiny_dataset):
        fc = _forecaster(tiny_dataset)
        assert fc.current_time is None
        fc.observe(np.array([[0, 0, 1, 5]]))
        assert fc.current_time == 5

    def test_timestamp_override(self, tiny_dataset):
        fc = _forecaster(tiny_dataset)
        fc.observe(np.array([[0, 0, 1, 99]]), timestamp=3)
        assert fc.current_time == 3

    def test_rejects_out_of_order(self, tiny_dataset):
        fc = _forecaster(tiny_dataset)
        fc.observe(np.array([[0, 0, 1, 5]]))
        with pytest.raises(ValueError):
            fc.observe(np.array([[0, 0, 1, 3]]))

    def test_empty_snapshot_noop(self, tiny_dataset):
        fc = _forecaster(tiny_dataset)
        fc.observe(np.zeros((0, 4)))
        assert fc.current_time is None

    def test_warm_up_replays_split(self, tiny_dataset):
        fc = _forecaster(tiny_dataset)
        fc.warm_up(tiny_dataset.train)
        assert fc.current_time == int(tiny_dataset.train.timestamps[-1])

    def test_reset(self, tiny_dataset):
        fc = _forecaster(tiny_dataset)
        fc.observe(np.array([[0, 0, 1, 5]]))
        fc.reset()
        assert fc.current_time is None
        fc.observe(np.array([[0, 0, 1, 1]]))  # earlier time ok after reset


class TestPrediction:
    def test_predict_returns_ranked_candidates(self, tiny_dataset):
        fc = _forecaster(tiny_dataset)
        fc.warm_up(tiny_dataset.train, max_timestamps=5)
        preds = fc.predict(subject=0, relation=0, top_k=5)
        assert len(preds) == 5
        assert [p.rank for p in preds] == [1, 2, 3, 4, 5]
        scores = [p.score for p in preds]
        assert scores == sorted(scores, reverse=True)

    def test_inverse_query_uses_doubled_relation(self, tiny_dataset):
        fc = _forecaster(tiny_dataset)
        fc.warm_up(tiny_dataset.train, max_timestamps=5)
        raw = fc.predict(subject=0, relation=0, top_k=3)
        inv = fc.predict(subject=0, relation=0, top_k=3, inverse=True)
        assert [p.score for p in raw] != [p.score for p in inv]

    def test_predict_batch_shape(self, tiny_dataset):
        fc = _forecaster(tiny_dataset)
        fc.warm_up(tiny_dataset.train, max_timestamps=3)
        scores = fc.predict_batch(np.array([[0, 0], [1, 1]]))
        assert scores.shape == (2, tiny_dataset.num_entities)

    def test_predict_batch_validates_shape(self, tiny_dataset):
        fc = _forecaster(tiny_dataset)
        with pytest.raises(ValueError):
            fc.predict_batch(np.array([0, 0]).reshape(2, 1))

    def test_prediction_time_defaults_to_next_step(self, tiny_dataset):
        fc = _forecaster(tiny_dataset)
        fc.observe(np.array([[0, 0, 1, 7]]))
        # should not raise; windows computed for t=8
        fc.predict(subject=0, relation=0, top_k=1)


class TestPersistence:
    def test_save_load_roundtrip(self, tiny_dataset, tmp_path):
        fc = _forecaster(tiny_dataset)
        fc.warm_up(tiny_dataset.train, max_timestamps=5)
        before = fc.predict(subject=0, relation=0, top_k=3)
        path = str(tmp_path / "model.npz")
        fc.save(path, metadata={"note": "test"})

        fc2 = _forecaster(tiny_dataset)
        meta = fc2.load(path)
        assert meta["note"] == "test"
        assert meta["num_entities"] == tiny_dataset.num_entities
        fc2.warm_up(tiny_dataset.train, max_timestamps=5)
        after = fc2.predict(subject=0, relation=0, top_k=3)
        assert [p.entity for p in before] == [p.entity for p in after]
        assert before[0].score == pytest.approx(after[0].score)
