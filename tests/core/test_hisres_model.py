"""HisRES model: config switches, forward/loss shapes, ablation variants."""

import numpy as np
import pytest

from repro.core import HisRES, HisRESConfig
from repro.core.window import WindowBuilder
from repro.nn.tensor import Tensor

E, R, D = 12, 4, 8


def _model(**overrides):
    cfg = HisRESConfig(embedding_dim=D, history_length=2, decoder_channels=4, **overrides)
    return HisRES(E, R, cfg)


def _window(track_vocabulary=False, use_global=True):
    b = WindowBuilder(E, R, history_length=2, use_global=use_global,
                      track_vocabulary=track_vocabulary)
    b.absorb(np.array([[0, 0, 1, 0], [2, 1, 3, 0]]))
    b.absorb(np.array([[1, 2, 4, 1], [0, 0, 2, 1]]))
    queries = np.array([[0, 0, 1, 2], [1, 4, 0, 2]])  # raw + inverse style
    return b.window_for(queries, prediction_time=2), queries


class TestConfig:
    def test_defaults_valid(self):
        HisRESConfig()

    def test_invalid_history_length(self):
        with pytest.raises(ValueError):
            HisRESConfig(history_length=0)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            HisRESConfig(alpha=1.5)

    def test_invalid_aggregator(self):
        with pytest.raises(ValueError):
            HisRESConfig(global_aggregator="gcnx")

    def test_both_encoders_off_rejected(self):
        with pytest.raises(ValueError):
            HisRESConfig(use_evolution=False, use_global=False)

    def test_invalid_granularity(self):
        with pytest.raises(ValueError):
            HisRESConfig(granularity=0)


class TestForward:
    def test_entity_and_relation_logit_shapes(self):
        model = _model()
        window, queries = _window()
        ent, rel = model(window, queries)
        assert ent.shape == (2, E)
        assert rel.shape == (2, 2 * R)

    def test_loss_scalar_and_finite(self):
        model = _model()
        window, queries = _window()
        loss = model.loss(window, queries)
        assert loss.size == 1
        assert np.isfinite(loss.item())

    def test_loss_backward_populates_all_gradients(self):
        model = _model()
        window, queries = _window()
        model.loss(window, queries).backward()
        with_grad = [n for n, p in model.named_parameters() if p.grad is not None]
        # every major component must receive gradient signal
        joined = " ".join(with_grad)
        for piece in ["entity_embedding", "relation_embedding", "evolution",
                      "global_encoder", "entity_decoder", "relation_decoder",
                      "granularity_gate", "global_gate"]:
            assert piece in joined, f"no gradient reached {piece}"

    def test_predict_entities_no_graph_side_effects(self):
        model = _model()
        window, queries = _window()
        scores = model.predict_entities(window, queries)
        assert scores.shape == (2, E)
        assert all(p.grad is None for p in model.parameters())

    def test_empty_history_window(self):
        model = _model()
        b = WindowBuilder(E, R, history_length=2, use_global=True)
        queries = np.array([[0, 0, 1, 0]])
        window = b.window_for(queries, prediction_time=0)
        ent, rel = model(window, queries)
        assert np.all(np.isfinite(ent.data))


class TestAblationVariants:
    """Every Table 4 switch must produce a working, *different* model."""

    @pytest.mark.parametrize(
        "overrides",
        [
            {"use_evolution": False},
            {"use_global": False},
            {"use_multi_granularity": False},
            {"use_self_gating_local": False},
            {"use_self_gating_global": False},
            {"use_relation_updating": False},
            {"use_time_encoding": False},
            {"global_aggregator": "compgcn"},
            {"global_aggregator": "rgat"},
        ],
    )
    def test_variant_forward_and_loss(self, overrides):
        model = _model(**overrides)
        window, queries = _window()
        loss = model.loss(window, queries)
        assert np.isfinite(loss.item())

    def test_no_global_skips_global_encoder_params(self):
        model = _model(use_global=False)
        names = [n for n, _ in model.named_parameters()]
        assert not any("global_encoder" in n for n in names)

    def test_no_evolution_skips_evolution_params(self):
        model = _model(use_evolution=False)
        names = [n for n, _ in model.named_parameters()]
        assert not any("evolution" in n for n in names)

    def test_no_multi_granularity_skips_inter_params(self):
        model = _model(use_multi_granularity=False)
        names = [n for n, _ in model.named_parameters()]
        assert not any("inter_gcn" in n for n in names)

    def test_aggregator_choice_changes_parameters(self):
        conv = {n for n, _ in _model(global_aggregator="convgat").named_parameters()}
        rgat = {n for n, _ in _model(global_aggregator="rgat").named_parameters()}
        assert conv != rgat

    def test_variants_score_differently(self):
        window, queries = _window()
        full = _model()
        nomg = _model(use_multi_granularity=False)
        full.eval()
        nomg.eval()
        s1 = full.predict_entities(window, queries)
        s2 = nomg.predict_entities(window, queries)
        assert not np.allclose(s1, s2)


class TestDeterminism:
    def test_eval_forward_deterministic(self):
        model = _model()
        model.eval()
        window, queries = _window()
        a = model.predict_entities(window, queries)
        b = model.predict_entities(window, queries)
        np.testing.assert_allclose(a, b)

    def test_train_mode_dropout_stochastic(self):
        model = _model(dropout=0.5)
        model.train()
        window, queries = _window()
        a, _ = model(window, queries)
        b, _ = model(window, queries)
        assert not np.allclose(a.data, b.data)
