"""Encode-once execution plane: state cache, parity, and plan contracts.

The acceptance-critical properties live here:

- exactly one live encode per distinct (timestamp, window fingerprint),
  asserted through the cache counters;
- the cached-state decode path is *bitwise* identical (float64) to the
  fused ``forward`` / ``predict_entities`` path, across the evaluator
  two-phase route and the serving micro-batch route;
- cache keys include model version and dtype, so weight updates and
  dtype switches can never resurrect stale states;
- fused models (vocabulary masks, per-query subgraphs) flow through the
  same plan without ever polluting the cache.
"""

import numpy as np
import pytest

from repro.baselines import MODEL_REGISTRY, build_model
from repro.core import HisRES, HisRESConfig
from repro.core.config import WindowConfig
from repro.core.execution import (
    EncoderState,
    EncoderStateCache,
    ExecutionPlan,
    make_fused_state,
)
from repro.core.window import WindowBuilder
from repro.training import TimelineEvaluator

E, R = 24, 5


def _window(builder=None, t=4, num_snapshots=4, seed=0):
    rng = np.random.default_rng(seed)
    builder = builder or WindowBuilder(E, R, history_length=2, use_global=True)
    for ts in range(num_snapshots):
        quads = np.stack(
            [
                rng.integers(0, E, 8),
                rng.integers(0, R, 8),
                rng.integers(0, E, 8),
                np.full(8, ts),
            ],
            axis=1,
        ).astype(np.int64)
        builder.absorb(quads)
    queries = np.array([[0, 1, 2, t], [3, 2, 4, t], [5, 0, 6, t]], dtype=np.int64)
    return builder.window_for(queries, prediction_time=t), queries, builder


def _hisres(dim=8):
    config = HisRESConfig(
        embedding_dim=dim, history_length=2, decoder_channels=4, dropout=0.0
    )
    return HisRES(E, R, config)


class TestEncoderStateCache:
    def test_one_encode_per_fingerprint(self):
        model = _hisres()
        window, queries, _ = _window()
        cache = EncoderStateCache(capacity=4, owner="test")
        plan = ExecutionPlan(model, cache=cache)
        first = plan.entity_scores(window, queries)
        second = plan.entity_scores(window, queries)
        assert cache.misses == 1 and cache.hits == 1
        np.testing.assert_array_equal(first, second)

    def test_distinct_windows_distinct_encodes(self):
        model = _hisres()
        cache = EncoderStateCache(capacity=4, owner="test")
        plan = ExecutionPlan(model, cache=cache)
        w1, q, _ = _window(seed=0)
        w2, _, _ = _window(seed=1)
        plan.entity_scores(w1, q)
        plan.entity_scores(w2, q)
        assert cache.misses == 2 and cache.hits == 0

    def test_lru_eviction(self):
        model = _hisres()
        cache = EncoderStateCache(capacity=1, owner="test")
        plan = ExecutionPlan(model, cache=cache)
        w1, q, _ = _window(seed=0)
        w2, _, _ = _window(seed=1)
        plan.entity_scores(w1, q)
        plan.entity_scores(w2, q)  # evicts w1's state
        plan.entity_scores(w1, q)  # miss again
        assert cache.evictions >= 1 and cache.misses == 3
        assert len(cache) == 1

    def test_model_version_invalidates(self):
        model = _hisres()
        cache = EncoderStateCache(capacity=4, owner="test")
        plan = ExecutionPlan(model, cache=cache)
        window, queries, _ = _window()
        plan.entity_scores(window, queries)
        model.bump_version()
        plan.entity_scores(window, queries)
        assert cache.misses == 2 and cache.hits == 0

    def test_load_state_dict_bumps_version(self):
        model = _hisres()
        before = model.version
        model.load_state_dict(model.state_dict())
        assert model.version == before + 1

    def test_zero_capacity_never_stores(self):
        model = _hisres()
        cache = EncoderStateCache(capacity=0, owner="test")
        plan = ExecutionPlan(model, cache=cache)
        window, queries, _ = _window()
        plan.entity_scores(window, queries)
        plan.entity_scores(window, queries)
        assert cache.misses == 2 and len(cache) == 0

    def test_fused_states_never_cached(self):
        model = build_model("cygnet", E, R, dim=8)
        assert not model.supports_encode_split
        cache = EncoderStateCache(capacity=4, owner="test")
        plan = ExecutionPlan(model, cache=cache)
        builder = WindowBuilder(E, R, history_length=2, use_global=False,
                                track_vocabulary=True)
        window, queries, _ = _window(builder=builder)
        scores = plan.entity_scores(window, queries)
        assert scores.shape == (3, E)
        # the plan bypasses the cache entirely for fused models
        assert cache.misses == 0 and len(cache) == 0
        fused = model.encode(window)
        assert fused.fused and not fused.cacheable

    def test_stats_and_registry_counters(self):
        from repro.obs.metrics import get_registry

        model = _hisres()
        cache = EncoderStateCache(capacity=4, owner="stats_test")
        plan = ExecutionPlan(model, cache=cache)
        window, queries, _ = _window()
        plan.entity_scores(window, queries)
        plan.entity_scores(window, queries)
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == pytest.approx(0.5)
        text = get_registry().render_prometheus()
        assert (
            'repro_encoder_state_cache_events_total{owner="stats_test",event="hit"} 1'
            in text
        )
        assert (
            'repro_encoder_state_cache_events_total{owner="stats_test",event="miss"} 1'
            in text
        )


SPLIT_KEYS = sorted(
    key
    for key in MODEL_REGISTRY
    if getattr(build_model(key, E, R, dim=8), "supports_encode_split", False)
)
FUSED_KEYS = sorted(set(MODEL_REGISTRY) - set(SPLIT_KEYS))


class TestFloat64Parity:
    @pytest.mark.parametrize("key", SPLIT_KEYS)
    def test_cached_decode_matches_fused_forward(self, key):
        from repro.training import seed_everything

        spec = MODEL_REGISTRY[key]
        # two identically-initialised instances so stateful encoders
        # (HGLS's entity memory observes every encoded window) see the
        # window exactly once on each route
        seed_everything(7)
        fused_model = build_model(key, E, R, dim=8)
        seed_everything(7)
        plan_model = build_model(key, E, R, dim=8)
        fused_model.eval()
        plan_model.eval()
        builder = WindowBuilder(
            E, R, history_length=2,
            use_global=spec.requirements.global_graph,
            track_vocabulary=spec.requirements.vocabulary,
        )
        window, queries, _ = _window(builder=builder)
        fused = np.asarray(fused_model.predict_entities(window, queries))
        plan = ExecutionPlan(
            plan_model, cache=EncoderStateCache(capacity=4, owner="parity")
        )
        plan.entity_scores(window, queries)            # prime the cache
        cached = plan.entity_scores(window, queries)   # decode from cache
        assert plan.cache.hits >= 1
        np.testing.assert_allclose(cached, fused, atol=1e-9, rtol=0.0)

    @pytest.mark.parametrize("key", FUSED_KEYS)
    def test_fused_shim_matches_predict_entities(self, key):
        spec = MODEL_REGISTRY[key]
        model = build_model(key, E, R, dim=8)
        model.eval()
        builder = WindowBuilder(
            E, R, history_length=2,
            use_global=spec.requirements.global_graph,
            track_vocabulary=spec.requirements.vocabulary,
        )
        window, queries, _ = _window(builder=builder)
        direct = np.asarray(model.predict_entities(window, queries))
        plan = ExecutionPlan(model, cache=EncoderStateCache(capacity=4, owner="parity"))
        via_plan = plan.entity_scores(window, queries)
        np.testing.assert_allclose(via_plan, direct, atol=1e-9, rtol=0.0)

    def test_hisres_two_phase_eval_bitwise(self, tiny_dataset):
        """Evaluator metrics through the plan == fused predict path, bitwise."""
        config = HisRESConfig(embedding_dim=8, history_length=2,
                              decoder_channels=4, dropout=0.0)
        model = HisRES(tiny_dataset.num_entities, tiny_dataset.num_relations, config)
        model.eval()
        evaluator = TimelineEvaluator(tiny_dataset)
        builder = WindowBuilder(
            tiny_dataset.num_entities, tiny_dataset.num_relations,
            history_length=2, use_global=True,
        )
        plan = evaluator.make_plan(model)
        cached_result = evaluator.evaluate_walk(
            model, builder, tiny_dataset.valid,
            warmup_splits=(tiny_dataset.train,),
            max_timestamps=3, two_phase=True, plan=plan,
        )
        assert plan.cache.misses > 0

        # fused reference: no cache, plain predict_entities per phase
        uncached = evaluator.evaluate_walk(
            model, builder, tiny_dataset.valid,
            warmup_splits=(tiny_dataset.train,),
            max_timestamps=3, two_phase=True,
            plan=ExecutionPlan(model, cache=None),
        )
        assert cached_result.mrr == uncached.mrr          # bitwise
        assert cached_result.ranks.tolist() == uncached.ranks.tolist()

    def test_joint_eval_one_encode_per_timestamp(self, tiny_dataset):
        model = HisRES(
            tiny_dataset.num_entities, tiny_dataset.num_relations,
            HisRESConfig(embedding_dim=8, history_length=2,
                         decoder_channels=4, dropout=0.0),
        )
        model.eval()
        evaluator = TimelineEvaluator(tiny_dataset)
        builder = WindowBuilder(
            tiny_dataset.num_entities, tiny_dataset.num_relations,
            history_length=2, use_global=True,
        )
        plan = evaluator.make_plan(model)
        n = min(3, len(tiny_dataset.valid.facts_by_time()))
        from repro.obs.metrics import get_registry

        miss_counter = get_registry().counter(
            "repro_encoder_state_cache_events_total",
            "Encoder-state cache hits/misses/evictions per owner.",
            labelnames=("owner", "event"),
        ).labels(owner="evaluator", event="miss")
        hit_counter = get_registry().counter(
            "repro_encoder_state_cache_events_total",
            "Encoder-state cache hits/misses/evictions per owner.",
            labelnames=("owner", "event"),
        ).labels(owner="evaluator", event="hit")
        misses_before, hits_before = miss_counter.value, hit_counter.value
        entity_result, relation_result = evaluator.evaluate_joint(
            model, builder, tiny_dataset.valid,
            warmup_splits=(tiny_dataset.train,),
            max_timestamps=3, plan=plan,
        )
        assert relation_result is not None
        # exactly one encode per distinct (timestamp, window fingerprint),
        # shared by entity + relation decoding — on the registry counters
        assert miss_counter.value - misses_before == n
        assert hit_counter.value - hits_before == 0
        assert plan.cache.misses == n and plan.cache.hits == 0
        assert 0.0 < entity_result.mrr <= 1.0

    def test_entity_then_relation_walk_reuses_states(self, tiny_dataset):
        model = HisRES(
            tiny_dataset.num_entities, tiny_dataset.num_relations,
            HisRESConfig(embedding_dim=8, history_length=2,
                         decoder_channels=4, dropout=0.0),
        )
        model.eval()
        evaluator = TimelineEvaluator(tiny_dataset)
        builder = WindowBuilder(
            tiny_dataset.num_entities, tiny_dataset.num_relations,
            history_length=2, use_global=True,
        )
        plan = evaluator.make_plan(model)
        n = min(3, len(tiny_dataset.valid.facts_by_time()))
        evaluator.evaluate_walk(
            model, builder, tiny_dataset.valid,
            warmup_splits=(tiny_dataset.train,), max_timestamps=3, plan=plan,
        )
        misses_after_entities = plan.cache.misses
        evaluator.evaluate_relations(
            model, builder, tiny_dataset.valid,
            warmup_splits=(tiny_dataset.train,), max_timestamps=3, plan=plan,
        )
        # the relation walk replays identical windows: decode-only
        assert plan.cache.misses == misses_after_entities
        assert plan.cache.hits >= n


class TestServingRoute:
    def _engine(self, tmp_path, state_cache_entries=8, use_global=True):
        from repro.nn.serialization import save_checkpoint
        from repro.serving import InferenceEngine

        model = build_model("hisres", E, R, dim=8)
        path = str(tmp_path / "model.npz")
        save_checkpoint(model, path, metadata={
            "model": "hisres", "num_entities": E, "num_relations": R, "dim": 8,
            "window": WindowConfig(history_length=2, use_global=use_global).to_dict(),
        })
        return InferenceEngine.from_checkpoint(
            path, batch_window_s=0.0, state_cache_entries=state_cache_entries,
        )

    def test_micro_batch_parity_with_fused(self, tmp_path):
        engine = self._engine(tmp_path)
        rng = np.random.default_rng(3)
        for ts in range(4):
            quads = np.stack(
                [rng.integers(0, E, 8), rng.integers(0, R, 8),
                 rng.integers(0, E, 8), np.full(8, ts)], axis=1,
            ).astype(np.int64)
            engine.ingest(quads)
        engine.flush()
        scores = engine.scores_for(0, 1)
        queries = np.array([[0, 1, 0, 0]], dtype=np.int64)
        window = engine.store.window_for(queries)
        with engine.model.inference_mode():
            fused = np.asarray(engine.model.predict_entities(window, queries))[0]
        np.testing.assert_allclose(scores, fused, atol=1e-9, rtol=0.0)

    def test_cold_pairs_share_encode_on_quiet_window(self, tmp_path):
        """Distinct uncached (s, r) pairs on an unchanged window hit the
        state cache: the prediction cache misses, the encode is reused.

        Without a global graph the window fingerprint is query-set
        independent, so every cold pair decodes from one shared state.
        (With ``use_global=True`` the globally relevant graph depends on
        the query pairs, so states are shared only between requests with
        matching global subgraphs — see docs/execution_plane.md.)
        """
        engine = self._engine(tmp_path, use_global=False)
        rng = np.random.default_rng(3)
        for ts in range(4):
            quads = np.stack(
                [rng.integers(0, E, 8), rng.integers(0, R, 8),
                 rng.integers(0, E, 8), np.full(8, ts)], axis=1,
            ).astype(np.int64)
            engine.ingest(quads)
        engine.flush()
        engine.predict(0, 1)
        engine.predict(1, 2)  # different pair, same sealed window
        engine.predict(2, 0)
        stats = engine.state_cache.stats()
        assert stats["misses"] >= 1
        assert stats["hits"] >= 1  # cold prediction-cache pairs reused the encode

    def test_window_rollover_invalidates_states(self, tmp_path):
        engine = self._engine(tmp_path)
        rng = np.random.default_rng(3)
        for ts in range(4):
            quads = np.stack(
                [rng.integers(0, E, 8), rng.integers(0, R, 8),
                 rng.integers(0, E, 8), np.full(8, ts)], axis=1,
            ).astype(np.int64)
            engine.ingest(quads)
        engine.flush()
        engine.predict(0, 1)
        misses = engine.state_cache.stats()["misses"]
        engine.ingest(np.array([[1, 1, 2]]), timestamp=10)
        engine.flush()  # window content changed -> new fingerprint
        engine.predict(0, 1)
        assert engine.state_cache.stats()["misses"] == misses + 1

    def test_state_cache_disabled(self, tmp_path):
        engine = self._engine(tmp_path, state_cache_entries=0)
        assert engine.state_cache is None
        assert engine.stats()["state_cache"] is None


class TestExecutionPlanContracts:
    def test_plan_model_mismatch_rejected(self, tiny_dataset):
        evaluator = TimelineEvaluator(tiny_dataset)
        m1, m2 = _hisres(), _hisres()
        plan = ExecutionPlan(m1)
        with pytest.raises(ValueError, match="plan.model"):
            evaluator._resolve_plan(m2, plan)

    def test_relation_scores_requires_joint_model(self):
        model = build_model("distmult", E, R, dim=8)
        plan = ExecutionPlan(model)
        builder = WindowBuilder(E, R, history_length=2, use_global=False)
        window, queries, _ = _window(builder=builder)
        with pytest.raises(TypeError, match="relation decoder"):
            plan.relation_scores(window, queries)

    def test_duck_typed_model_fallback(self):
        class Legacy:
            def predict_entities(self, window, queries):
                return np.ones((len(queries), E))

        plan = ExecutionPlan(Legacy())
        builder = WindowBuilder(E, R, history_length=2, use_global=False)
        window, queries, _ = _window(builder=builder)
        assert plan.entity_scores(window, queries).shape == (3, E)
        assert not plan.supports_split

    def test_loss_encodes_live_under_grad(self):
        model = _hisres()
        model.train()
        plan = ExecutionPlan(model, cache=EncoderStateCache(capacity=4, owner="t"))
        window, queries, _ = _window()
        loss = plan.loss(window, queries)
        loss.backward()
        assert plan.cache.misses == 0  # the loss path never touches the cache
        assert any(p.grad is not None for p in model.parameters())

    def test_evaluator_alias_deprecated(self):
        import repro.training
        import repro.training.evaluator as evaluator_module

        with pytest.warns(DeprecationWarning, match="TimelineEvaluator"):
            alias = evaluator_module.Evaluator
        assert alias is TimelineEvaluator
        with pytest.warns(DeprecationWarning, match="TimelineEvaluator"):
            alias = repro.training.Evaluator
        assert alias is TimelineEvaluator


class TestWindowConfig:
    def test_round_trip(self):
        config = WindowConfig(history_length=3, granularity=2, use_global=False,
                              track_vocabulary=True, global_max_history=50)
        assert WindowConfig.from_dict(config.to_dict()) == config

    def test_from_dict_ignores_unknown_keys(self):
        config = WindowConfig.from_dict({"history_length": 5, "future_knob": 1})
        assert config.history_length == 5

    def test_from_dict_overrides_win(self):
        config = WindowConfig.from_dict({"history_length": 5}, history_length=7)
        assert config.history_length == 7

    def test_build_matches_manual_builder(self):
        config = WindowConfig(history_length=3, use_global=True)
        builder = config.build(E, R)
        assert builder.history_length == 3
        assert isinstance(builder, WindowBuilder)

    def test_validation(self):
        with pytest.raises(ValueError):
            WindowConfig(history_length=0)

    def test_checkpoint_round_trip_through_forecaster(self, tmp_path):
        from repro.core import Forecaster
        from repro.nn.serialization import read_checkpoint_metadata

        model = _hisres()
        config = WindowConfig(history_length=3, use_global=True)
        forecaster = Forecaster(model, E, R, window_config=config)
        path = str(tmp_path / "f.npz")
        forecaster.save(path)
        meta = read_checkpoint_metadata(path)
        assert WindowConfig.from_dict(meta["window"]) == config


class TestInferenceMode:
    def test_restores_training_state(self):
        model = _hisres()
        model.train()
        with model.inference_mode():
            assert not model.training
        assert model.training
        model.eval()
        with model.inference_mode():
            assert not model.training
        assert not model.training

    def test_no_grad_inside(self):
        from repro.nn.tensor import Tensor, is_grad_enabled

        model = _hisres()
        with model.inference_mode():
            assert not is_grad_enabled()


class TestEncoderStateDataclass:
    def test_frozen(self):
        state = EncoderState(entity_matrix=None, relation_matrix=None)
        with pytest.raises(Exception):
            state.fused = True

    def test_fused_state_carries_window(self):
        model = build_model("cygnet", E, R, dim=8)
        builder = WindowBuilder(E, R, history_length=2, use_global=False,
                                track_vocabulary=True)
        window, queries, _ = _window(builder=builder)
        state = make_fused_state(model, window)
        assert state.window is window and state.fused
