"""Unit tests for HisRES building blocks (Eqs. 1-14)."""

import numpy as np
import pytest

from repro.core.compgcn import CompGCNLayer, CompGCNStack
from repro.core.convgat import ConvGATLayer
from repro.core.gating import SelfGating
from repro.core.rgat import RGATLayer
from repro.core.time_encoding import TimeEncoding
from repro.core.evolution import l2_normalize_rows, relation_entity_pooling
from repro.graphs.snapshot import SnapshotGraph, build_snapshot
from repro.nn.tensor import Tensor

D = 8
E = 6
R = 4  # doubled space size used directly here


def _graph():
    return SnapshotGraph(
        src=np.array([0, 1, 2, 0]),
        rel=np.array([0, 1, 2, 3]),
        dst=np.array([1, 2, 0, 2]),
        num_entities=E,
        num_relations=R,
    )


def _empty_graph():
    return SnapshotGraph(
        src=np.zeros(0, dtype=np.int64),
        rel=np.zeros(0, dtype=np.int64),
        dst=np.zeros(0, dtype=np.int64),
        num_entities=E,
        num_relations=R,
    )


def _embs(rng):
    return (
        Tensor(rng.normal(size=(E, D)), requires_grad=True),
        Tensor(rng.normal(size=(R, D)), requires_grad=True),
    )


class TestTimeEncoding:
    def test_encode_bounded(self, rng):
        te = TimeEncoding(D)
        code = te.encode(4.0)
        assert code.shape == (D,)
        assert np.all(np.abs(code.data) <= 1.0)

    def test_forward_shape(self, rng):
        te = TimeEncoding(D)
        out = te(Tensor(rng.normal(size=(E, D))), delta=2.0)
        assert out.shape == (E, D)

    def test_different_deltas_differ(self, rng):
        te = TimeEncoding(D)
        x = Tensor(rng.normal(size=(E, D)))
        a, b = te(x, 1.0), te(x, 5.0)
        assert not np.allclose(a.data, b.data)

    def test_periodicity_of_code(self):
        te = TimeEncoding(D)
        te.weight.data[...] = 2 * np.pi  # period-1 cosine
        np.testing.assert_allclose(te.encode(0.0).data, te.encode(1.0).data, atol=1e-9)

    def test_gradients_flow(self, rng):
        te = TimeEncoding(D)
        x = Tensor(rng.normal(size=(E, D)), requires_grad=True)
        te(x, 3.0).sum().backward()
        assert x.grad is not None
        assert te.weight.grad is not None


class TestCompGCN:
    def test_output_shapes(self, rng):
        layer = CompGCNLayer(D)
        e, r = _embs(rng)
        e2, r2 = layer(e, r, _graph())
        assert e2.shape == (E, D) and r2.shape == (R, D)

    def test_relation_update_changes_relations(self, rng):
        layer = CompGCNLayer(D, update_relations=True)
        e, r = _embs(rng)
        _, r2 = layer(e, r, _graph())
        assert not np.allclose(r2.data, r.data)

    def test_no_relation_update_passthrough(self, rng):
        layer = CompGCNLayer(D, update_relations=False)
        e, r = _embs(rng)
        _, r2 = layer(e, r, _graph())
        np.testing.assert_array_equal(r2.data, r.data)

    def test_empty_graph_self_loop_only(self, rng):
        layer = CompGCNLayer(D)
        e, r = _embs(rng)
        e2, _ = layer(e, r, _empty_graph())
        assert e2.shape == (E, D)

    def test_isolated_node_only_self_transform(self, rng):
        """Node 5 has no edges; its output depends only on its own row."""
        layer = CompGCNLayer(D)
        layer.eval()
        e, r = _embs(rng)
        out1, _ = layer(e, r, _graph())
        e_mod = Tensor(e.data.copy())
        e_mod.data[0] += 10.0  # perturb another node
        out2, _ = layer(e_mod, r, _graph())
        np.testing.assert_allclose(out1.data[5], out2.data[5])

    def test_message_direction_src_to_dst(self, rng):
        """Perturbing a source node changes its destination's output."""
        layer = CompGCNLayer(D)
        layer.eval()
        e, r = _embs(rng)
        out1, _ = layer(e, r, _graph())
        e_mod = Tensor(e.data.copy())
        e_mod.data[0] += 1.0  # node 0 -> edges into nodes 1 and 2
        out2, _ = layer(e_mod, r, _graph())
        assert not np.allclose(out1.data[1], out2.data[1])

    def test_stack_applies_layers(self, rng):
        stack = CompGCNStack(D, num_layers=3)
        e, r = _embs(rng)
        e2, r2 = stack(e, r, _graph())
        assert e2.shape == (E, D)

    def test_gradients_reach_embeddings(self, rng):
        layer = CompGCNLayer(D)
        e, r = _embs(rng)
        e2, r2 = layer(e, r, _graph())
        (e2.sum() + r2.sum()).backward()
        assert e.grad is not None and r.grad is not None


class TestConvGAT:
    def test_attention_normalised_per_destination(self, rng):
        layer = ConvGATLayer(D)
        e, r = _embs(rng)
        g = _graph()
        weights = layer.edge_attention(e, r, g)
        for node in np.unique(g.dst):
            total = weights.data[g.dst == node].sum()
            assert total == pytest.approx(1.0)

    def test_output_shape_and_relation_passthrough(self, rng):
        layer = ConvGATLayer(D)
        e, r = _embs(rng)
        e2, r2 = layer(e, r, _graph())
        assert e2.shape == (E, D)
        np.testing.assert_array_equal(r2.data, r.data)

    def test_empty_graph(self, rng):
        layer = ConvGATLayer(D)
        e, r = _embs(rng)
        e2, _ = layer(e, r, _empty_graph())
        assert e2.shape == (E, D)

    def test_gradients_flow_through_attention(self, rng):
        layer = ConvGATLayer(D)
        e, r = _embs(rng)
        e2, _ = layer(e, r, _graph())
        e2.sum().backward()
        assert layer.attn_hidden.weight.grad is not None
        assert layer.conv.weight.grad is not None

    def test_attention_favors_higher_scoring_edge(self, rng):
        """Monotonicity: boosting one edge's logit raises its weight."""
        layer = ConvGATLayer(D)
        layer.eval()
        e, r = _embs(rng)
        g = SnapshotGraph(
            src=np.array([0, 1]), rel=np.array([0, 0]), dst=np.array([2, 2]),
            num_entities=E, num_relations=R,
        )
        w = layer.edge_attention(e, r, g)
        assert w.data.sum() == pytest.approx(1.0)
        assert 0 < w.data[0] < 1


class TestRGAT:
    def test_shapes(self, rng):
        layer = RGATLayer(D)
        e, r = _embs(rng)
        e2, r2 = layer(e, r, _graph())
        assert e2.shape == (E, D)
        np.testing.assert_array_equal(r2.data, r.data)

    def test_empty_graph(self, rng):
        layer = RGATLayer(D)
        e, r = _embs(rng)
        e2, _ = layer(e, r, _empty_graph())
        assert e2.shape == (E, D)


class TestSelfGating:
    def test_output_between_inputs_when_enabled(self, rng):
        gate = SelfGating(D)
        a = Tensor(np.ones((E, D)))
        b = Tensor(np.zeros((E, D)))
        out = gate(a, b)
        assert np.all(out.data >= 0) and np.all(out.data <= 1)

    def test_disabled_is_mean(self, rng):
        gate = SelfGating(D, enabled=False)
        a = Tensor(np.full((E, D), 4.0))
        b = Tensor(np.full((E, D), 2.0))
        np.testing.assert_allclose(gate(a, b).data, 3.0)

    def test_gate_values_shape(self, rng):
        gate = SelfGating(D)
        theta = gate.gate_values(Tensor(rng.normal(size=(E, D))))
        assert theta.shape == (E, D)
        assert np.all((theta.data > 0) & (theta.data < 1))

    def test_gate_values_disabled_raises(self):
        with pytest.raises(RuntimeError):
            SelfGating(D, enabled=False).gate_values(Tensor(np.zeros((E, D))))

    def test_gradients_flow_to_both(self, rng):
        gate = SelfGating(D)
        a = Tensor(rng.normal(size=(E, D)), requires_grad=True)
        b = Tensor(rng.normal(size=(E, D)), requires_grad=True)
        gate(a, b).sum().backward()
        assert a.grad is not None and b.grad is not None


class TestEvolutionHelpers:
    def test_l2_normalize_rows(self, rng):
        x = Tensor(rng.normal(size=(5, D)) * 10)
        out = l2_normalize_rows(x)
        np.testing.assert_allclose(np.linalg.norm(out.data, axis=1), 1.0, rtol=1e-6)

    def test_relation_pooling_present_and_fallback(self, rng):
        e, r = _embs(rng)
        g = _graph()
        pooled = relation_entity_pooling(e, g, fallback=r)
        # relation 0 has one edge with src 0: pooled row = e[0]
        np.testing.assert_allclose(pooled.data[0], e.data[0])
        # no relation id > 3 exists in this doubled space of 4; all used

    def test_relation_pooling_empty_graph_is_fallback(self, rng):
        e, r = _embs(rng)
        pooled = relation_entity_pooling(e, _empty_graph(), fallback=r)
        np.testing.assert_array_equal(pooled.data, r.data)

    def test_relation_pooling_mean_of_subjects(self, rng):
        e, r = _embs(rng)
        g = SnapshotGraph(
            src=np.array([0, 1]), rel=np.array([2, 2]), dst=np.array([3, 4]),
            num_entities=E, num_relations=R,
        )
        pooled = relation_entity_pooling(e, g, fallback=r)
        np.testing.assert_allclose(pooled.data[2], (e.data[0] + e.data[1]) / 2)
